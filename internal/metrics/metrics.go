// Package metrics is the runtime's single source of truth for
// operational counters and latency distributions, modeled on the
// on-demand performance introspection the AllScale runtime prototype
// inherits from HPX (Section 3.2): every layer registers its counters
// and histograms in a per-locality Registry, and the monitoring and
// resilience services read snapshots from that one registry instead of
// scraping ad-hoc per-package counter structs.
//
// The package is stdlib-only and always-on: counters are single atomic
// adds and histograms two atomic adds plus a bit-length computation,
// cheap enough to leave enabled in production paths (the optional
// tracing layer in internal/trace is the part that can be switched
// off entirely).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level — queue depths, pool occupancy —
// that can move both ways, unlike the monotone Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations d with 2^(i-1)µs <= d < 2^i µs (bucket 0 holds
// sub-microsecond observations, the last bucket is a catch-all), so
// the range spans 1µs .. ~2³⁰µs ≈ 18 minutes.
const NumBuckets = 32

// Histogram is a fixed-bucket latency histogram over power-of-two
// microsecond boundaries. All fields are atomics, so observations and
// snapshots never block each other; an in-flight snapshot may observe
// a bucket increment whose count increment is not yet visible, but
// never the reverse (Observe writes the bucket first), keeping
// concurrent snapshots internally consistent: sum(Buckets) >= Count.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i (the last
// bucket is unbounded).
func BucketBound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sum.Add(uint64(d))
	}
}

// ObserveValue records one dimensionless observation (batch sizes,
// depths): buckets become powers of two of the raw value rather than
// of microseconds, and the snapshot's SumNanos field holds the raw
// sum. A histogram should be fed through either Observe or
// ObserveValue, never both.
func (h *Histogram) ObserveValue(v uint64) {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Count is read
// before the buckets, so under concurrent Observe traffic
// sum(Buckets) >= Count always holds (a "torn" snapshot with a count
// that exceeds its buckets cannot occur).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is one point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count    uint64
	SumNanos uint64
	Buckets  [NumBuckets]uint64
}

// Mean returns the mean observed latency (0 with no observations).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// using the bucket upper bounds; it is exact up to bucket resolution.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want == 0 {
		want = 1
	}
	seen := uint64(0)
	for i, b := range s.Buckets {
		seen += b
		if seen >= want {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Registry is a named collection of counters and histograms — one per
// locality, shared by the transport endpoint, the RPC layer, the
// scheduler and the data item manager.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. The returned pointer is stable: callers cache it and hit
// only the atomic on the fast path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. The returned pointer is stable, like Counter's.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeValue returns the level of the named gauge, or 0 when no such
// gauge was ever registered.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	if g == nil {
		return 0
	}
	return g.Value()
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the value of the named counter, or 0 when no
// such counter was ever registered.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Snapshot captures every registered counter and histogram.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// Snapshot is one point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// String renders the snapshot as a sorted text table (for reports and
// debugging).
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-32s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-32s %d (gauge)\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "%-32s n=%d mean=%v p99<=%v\n", k, h.Count, h.Mean(), h.Quantile(0.99))
	}
	return b.String()
}
