package metrics_test

import (
	"sync"
	"testing"
	"time"

	"allscale/internal/metrics"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("a")
	if c != r.Counter("a") {
		t.Fatal("Counter not stable across lookups")
	}
	c.Inc()
	c.Add(2)
	if got := r.CounterValue("a"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
	if got := r.CounterValue("never-registered"); got != 0 {
		t.Fatalf("unregistered CounterValue = %d, want 0", got)
	}
	h := r.Histogram("h")
	if h != r.Histogram("h") {
		t.Fatal("Histogram not stable across lookups")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h metrics.Histogram
	h.Observe(0)                     // bucket 0
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(time.Hour)             // clamped to the catch-all bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("low buckets = %v", s.Buckets[:3])
	}
	if s.Buckets[metrics.NumBuckets-1] != 1 {
		t.Fatal("hour observation missed the catch-all bucket")
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Fatalf("median bound = %v", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %v", m)
	}
}

// TestHistogramNoTornSnapshots hammers one histogram from many
// goroutines while snapshotting concurrently: because Observe writes
// the bucket before the count and Snapshot reads the count first, a
// snapshot's bucket sum may run ahead of its count but never behind.
func TestHistogramNoTornSnapshots(t *testing.T) {
	var h metrics.Histogram
	const goroutines = 8
	const perG = 5000

	var snapWG, obsWG sync.WaitGroup
	stop := make(chan struct{})
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, b := range s.Buckets {
				sum += b
			}
			if sum < s.Count {
				t.Errorf("torn snapshot: bucket sum %d < count %d", sum, s.Count)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		obsWG.Add(1)
		go func(g int) {
			defer obsWG.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(i%2000) * time.Microsecond)
			}
		}(g)
	}
	obsWG.Wait() // snapshotter races the observers until they finish
	close(stop)
	snapWG.Wait()

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("final count %d, want %d", s.Count, goroutines*perG)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("quiesced bucket sum %d != count %d", sum, s.Count)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := metrics.NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != 8*2000 {
		t.Fatalf("shared counter = %d, want %d", s.Counters["shared"], 8*2000)
	}
	if s.Histograms["lat"].Count != 8*2000 {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["lat"].Count, 8*2000)
	}
	if s.String() == "" {
		t.Fatal("snapshot renders empty")
	}
}
