package dim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"allscale/internal/dataitem"
	"allscale/internal/region"
	"allscale/internal/runtime"
)

// testSystem wires n localities with managers over the in-process
// fabric and a shared type registry layout (every rank registers the
// same types).
type testSystem struct {
	sys      *runtime.System
	managers []*Manager
}

func newTestSystem(t testing.TB, n int, types ...dataitem.Type) *testSystem {
	t.Helper()
	sys := runtime.NewSystem(n)
	ts := &testSystem{sys: sys}
	for i := 0; i < n; i++ {
		reg := dataitem.NewRegistry()
		for _, typ := range types {
			reg.MustRegister(typ)
		}
		ts.managers = append(ts.managers, New(sys.Locality(i), reg))
	}
	sys.Start()
	t.Cleanup(func() { sys.Close() })
	return ts
}

func p(xs ...int) region.Point { return region.Point(xs) }

func gr(minX, minY, maxX, maxY int) dataitem.GridRegion {
	return dataitem.GridRegionFromTo(p(minX, minY), p(maxX, maxY))
}

func TestHierarchyGeometry(t *testing.T) {
	// Fig. 5: 8 processes.
	if got := rootLevel(8); got != 4 {
		t.Fatalf("rootLevel(8) = %d, want 4", got)
	}
	if got := rootLevel(1); got != 1 {
		t.Fatalf("rootLevel(1) = %d, want 1", got)
	}
	if got := rootLevel(5); got != 4 { // needs 8-wide tree
		t.Fatalf("rootLevel(5) = %d, want 4", got)
	}
	// Level-2 nodes at 0,2,4,6; level-3 at 0,4; level-4 at 0.
	for _, c := range []struct {
		i, l int
		want bool
	}{
		{0, 2, true}, {1, 2, false}, {2, 2, true}, {6, 2, true},
		{0, 3, true}, {2, 3, false}, {4, 3, true},
		{0, 4, true}, {4, 4, false},
	} {
		if got := hostsNode(c.i, c.l); got != c.want {
			t.Errorf("hostsNode(%d,%d) = %v, want %v", c.i, c.l, got, c.want)
		}
	}
	// process0 r47's host: right child of root (level 4 at 0) is level
	// 3 at 0+2^2 = 4 — matching Fig. 5's process4 r47.
	if got := rightChildHost(0, 4); got != 4 {
		t.Fatalf("rightChildHost(0,4) = %d, want 4", got)
	}
	if got := rightChildHost(4, 3); got != 6 {
		t.Fatalf("rightChildHost(4,3) = %d, want 6", got)
	}
	if got := parentHost(6, 2); got != 4 {
		t.Fatalf("parentHost(6,2) = %d, want 4", got)
	}
	if got := parentHost(4, 3); got != 0 {
		t.Fatalf("parentHost(4,3) = %d, want 0", got)
	}
	lo, hi := subtreeSpan(4, 3)
	if lo != 4 || hi != 8 {
		t.Fatalf("subtreeSpan(4,3) = [%d,%d)", lo, hi)
	}
}

func TestCreateAndDestroyItem(t *testing.T) {
	typ := dataitem.NewGridType[float64]("field", p(16, 16))
	ts := newTestSystem(t, 4, typ)
	id, err := ts.managers[1].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}
	// All ranks know the item with empty coverage.
	for r, m := range ts.managers {
		cov, err := m.Coverage(id)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !cov.IsEmpty() {
			t.Fatalf("rank %d: fresh item has coverage %v", r, cov)
		}
	}
	if err := ts.managers[2].DestroyItem(id); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.managers[0].Coverage(id); err == nil {
		t.Fatal("destroyed item still known")
	}
}

func TestCreateRequiresRegisteredType(t *testing.T) {
	ts := newTestSystem(t, 2)
	typ := dataitem.NewGridType[int]("unregistered", p(4, 4))
	if _, err := ts.managers[0].CreateItem(typ); err == nil {
		t.Fatal("create of unregistered type must fail")
	}
}

func TestAcquireWriteAllocatesFirstTouch(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 2, typ)
	id, err := ts.managers[0].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}
	r := gr(0, 0, 4, 8)
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	cov, _ := ts.managers[1].Coverage(id)
	if !cov.Equal(dataitem.Region(r)) {
		t.Fatalf("coverage after first-touch = %v, want %v", cov, r)
	}
	// The index must locate it from the other rank.
	found, err := ts.managers[0].Lookup(id, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Rank != 1 || !found[0].Region.Equal(dataitem.Region(r)) {
		t.Fatalf("lookup = %+v", found)
	}
	ts.managers[1].Release(1)
}

func TestWriteMigratesDataBetweenRanks(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)

	// Rank 0 writes initial values.
	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag0, _ := ts.managers[0].Fragment(id)
	g0 := frag0.(*dataitem.GridFragment[int])
	n := 0
	region.BoxFromTo(p(0, 0), p(8, 8)).ForEachPoint(func(q region.Point) { g0.Set(q, n); n++ })
	ts.managers[0].Release(1)

	// Rank 3 acquires a write on a sub-region: data must migrate.
	sub := gr(2, 2, 6, 6)
	if err := ts.managers[3].Acquire(2, []Requirement{{Item: id, Region: sub, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag3, _ := ts.managers[3].Fragment(id)
	g3 := frag3.(*dataitem.GridFragment[int])
	if got, want := g3.At(p(2, 2)), 2*8+2; got != want {
		t.Fatalf("migrated value = %d, want %d", got, want)
	}
	if got, want := g3.At(p(5, 5)), 5*8+5; got != want {
		t.Fatalf("migrated value = %d, want %d", got, want)
	}
	// Rank 0 must no longer hold the migrated region (exclusive
	// writes).
	cov0, _ := ts.managers[0].Coverage(id)
	if !cov0.Intersect(dataitem.Region(sub)).IsEmpty() {
		t.Fatalf("rank 0 still covers %v", cov0.Intersect(dataitem.Region(sub)))
	}
	ts.managers[3].Release(2)
}

func TestReadReplicates(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 2, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)

	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag0, _ := ts.managers[0].Fragment(id)
	frag0.(*dataitem.GridFragment[int]).Set(p(3, 3), 99)
	ts.managers[0].Release(1)

	sub := gr(2, 2, 5, 5)
	if err := ts.managers[1].Acquire(2, []Requirement{{Item: id, Region: sub, Mode: Read}}); err != nil {
		t.Fatal(err)
	}
	frag1, _ := ts.managers[1].Fragment(id)
	if got := frag1.(*dataitem.GridFragment[int]).At(p(3, 3)); got != 99 {
		t.Fatalf("replicated value = %d, want 99", got)
	}
	// Replication: rank 0 still holds the full region.
	cov0, _ := ts.managers[0].Coverage(id)
	if !cov0.Equal(dataitem.Region(r)) {
		t.Fatalf("source coverage after replicate = %v", cov0)
	}
	// Owners must report both copies of the replicated region.
	owners, err := ts.managers[0].Owners(id, sub)
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[int]bool{}
	for _, o := range owners {
		ranks[o.Rank] = true
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("owners of replicated region = %+v", owners)
	}
	ts.managers[1].Release(2)
}

func TestWriteConsolidatesReplicas(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)

	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag0, _ := ts.managers[0].Fragment(id)
	frag0.(*dataitem.GridFragment[int]).Set(p(1, 1), 7)
	ts.managers[0].Release(1)

	// Ranks 1 and 2 replicate for reading, then release.
	for i, m := range ts.managers[1:3] {
		tok := uint64(10 + i)
		if err := m.Acquire(tok, []Requirement{{Item: id, Region: r, Mode: Read}}); err != nil {
			t.Fatal(err)
		}
		m.Release(tok)
	}

	// Rank 3 acquires write: all three copies must be consolidated.
	if err := ts.managers[3].Acquire(20, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	owners, err := ts.managers[3].Owners(id, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0].Rank != 3 {
		t.Fatalf("owners after consolidation = %+v", owners)
	}
	frag3, _ := ts.managers[3].Fragment(id)
	if got := frag3.(*dataitem.GridFragment[int]).At(p(1, 1)); got != 7 {
		t.Fatalf("consolidated value = %d, want 7", got)
	}
	ts.managers[3].Release(20)
}

func TestLookupEscalatesThroughHierarchy(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(16, 16))
	ts := newTestSystem(t, 8, typ)
	id, _ := ts.managers[0].CreateItem(typ)

	// Each rank owns one 2-column band.
	for i := 0; i < 8; i++ {
		band := gr(2*i, 0, 2*i+2, 16)
		if err := ts.managers[i].Acquire(uint64(i+1), []Requirement{{Item: id, Region: band, Mode: Write}}); err != nil {
			t.Fatal(err)
		}
		ts.managers[i].Release(uint64(i + 1))
	}

	// Rank 5 locates a region spanning bands of ranks 1..6.
	query := gr(3, 0, 13, 16)
	found, err := ts.managers[5].Lookup(id, query)
	if err != nil {
		t.Fatal(err)
	}
	covered := dataitem.Region(dataitem.GridRegion{})
	seen := map[int]bool{}
	for _, e := range found {
		covered = covered.Union(e.Region)
		seen[e.Rank] = true
		// Verify the claimed rank really holds the segment.
		cov, _ := ts.managers[e.Rank].Coverage(id)
		if !e.Region.Difference(cov).IsEmpty() {
			t.Fatalf("rank %d does not hold %v", e.Rank, e.Region)
		}
	}
	if !covered.Equal(dataitem.Region(query)) {
		t.Fatalf("lookup covered %v, want %v", covered, query)
	}
	for rank := 1; rank <= 6; rank++ {
		if !seen[rank] {
			t.Fatalf("rank %d missing from result %v", rank, found)
		}
	}
}

func TestLookupUnallocatedReturnsNothing(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	found, err := ts.managers[2].Lookup(id, gr(0, 0, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("lookup of unallocated region = %+v", found)
	}
}

func TestLockConflictsSerializeAcquisitions(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 1, typ)
	m := ts.managers[0]
	id, _ := m.CreateItem(typ)
	r := gr(0, 0, 8, 8)

	if err := m.Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}

	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Acquire(2, []Requirement{{Item: id, Region: gr(0, 0, 2, 2), Mode: Write}})
	}()
	select {
	case err := <-acquired:
		t.Fatalf("conflicting acquire completed while lock held: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	m.Release(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire did not proceed after release")
	}
	m.Release(2)
}

func TestConcurrentReadersShareLock(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 1, typ)
	m := ts.managers[0]
	id, _ := m.CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := m.Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	m.Release(1)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(tok uint64) {
			defer wg.Done()
			if err := m.Acquire(tok, []Requirement{{Item: id, Region: r, Mode: Read}}); err != nil {
				errs <- err
				return
			}
			time.Sleep(10 * time.Millisecond)
			m.Release(tok)
		}(uint64(100 + i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFetchWaitsForLockRelease(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 2, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}

	// Rank 1's write acquire must block until rank 0 releases.
	done := make(chan error, 1)
	go func() {
		done <- ts.managers[1].Acquire(2, []Requirement{{Item: id, Region: gr(0, 0, 4, 4), Mode: Write}})
	}()
	select {
	case err := <-done:
		t.Fatalf("write acquire with held remote lock completed early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	ts.managers[0].Release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire never completed")
	}
	ts.managers[1].Release(2)
}

func TestDropReplicaRespectsLocks(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 2, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[0].Release(1)
	// Replicate to rank 1.
	if err := ts.managers[1].Acquire(2, []Requirement{{Item: id, Region: r, Mode: Read}}); err != nil {
		t.Fatal(err)
	}
	// Dropping rank 1's locked replica must block until release.
	dropped := make(chan error, 1)
	go func() { dropped <- ts.managers[0].DropReplica(1, id, r) }()
	select {
	case err := <-dropped:
		t.Fatalf("drop of locked replica completed early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	ts.managers[1].Release(2)
	if err := <-dropped; err != nil {
		t.Fatal(err)
	}
	cov, _ := ts.managers[1].Coverage(id)
	if !cov.IsEmpty() {
		t.Fatalf("replica survived drop: %v", cov)
	}
	// Rank 0 still holds the data (data preservation).
	cov0, _ := ts.managers[0].Coverage(id)
	if !cov0.Equal(dataitem.Region(r)) {
		t.Fatal("primary copy lost")
	}
}

func TestAcquireTimeoutSurfacesDeadlock(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(4, 4))
	ts := newTestSystem(t, 1, typ)
	m := ts.managers[0]
	m.LockWaitTimeout = 200 * time.Millisecond
	id, _ := m.CreateItem(typ)
	r := gr(0, 0, 4, 4)
	if err := m.Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	err := m.Acquire(2, []Requirement{{Item: id, Region: r, Mode: Write}})
	if err == nil {
		t.Fatal("conflicting acquire must time out while lock held")
	}
	m.Release(1)
}

func TestManyItemsIndependentIndexes(t *testing.T) {
	ta := dataitem.NewGridType[int]("a", p(8, 8))
	tb := dataitem.NewGridType[int]("b", p(8, 8))
	ts := newTestSystem(t, 4, ta, tb)
	ida, _ := ts.managers[0].CreateItem(ta)
	idb, _ := ts.managers[0].CreateItem(tb)

	if err := ts.managers[1].Acquire(1, []Requirement{{Item: ida, Region: gr(0, 0, 8, 8), Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	if err := ts.managers[2].Acquire(2, []Requirement{{Item: idb, Region: gr(0, 0, 8, 8), Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	fa, _ := ts.managers[3].Lookup(ida, gr(0, 0, 8, 8))
	fb, _ := ts.managers[3].Lookup(idb, gr(0, 0, 8, 8))
	if len(fa) != 1 || fa[0].Rank != 1 {
		t.Fatalf("item a lookup = %+v", fa)
	}
	if len(fb) != 1 || fb[0].Rank != 2 {
		t.Fatalf("item b lookup = %+v", fb)
	}
	ts.managers[1].Release(1)
	ts.managers[2].Release(2)
}

func TestNonPowerOfTwoProcessCount(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(12, 4))
	ts := newTestSystem(t, 6, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	for i := 0; i < 6; i++ {
		band := gr(2*i, 0, 2*i+2, 4)
		if err := ts.managers[i].Acquire(uint64(i+1), []Requirement{{Item: id, Region: band, Mode: Write}}); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		ts.managers[i].Release(uint64(i + 1))
	}
	found, err := ts.managers[4].Lookup(id, gr(0, 0, 12, 4))
	if err != nil {
		t.Fatal(err)
	}
	covered := dataitem.Region(dataitem.GridRegion{})
	for _, e := range found {
		covered = covered.Union(e.Region)
	}
	if !covered.Equal(dataitem.Region(gr(0, 0, 12, 4))) {
		t.Fatalf("covered = %v", covered)
	}
}

func TestTreeItemDistribution(t *testing.T) {
	typ := dataitem.NewTreeType[int]("tree", 5)
	ts := newTestSystem(t, 2, typ)
	id, _ := ts.managers[0].CreateItem(typ)

	left := dataitem.TreeItemRegion{T: region.SubtreeRegion(5, 2)}
	right := dataitem.TreeItemRegion{T: region.SubtreeRegion(5, 3)}
	root := dataitem.TreeItemRegion{T: region.SingleNodeRegion(5, 1)}

	if err := ts.managers[0].Acquire(1, []Requirement{
		{Item: id, Region: left.Union(root), Mode: Write},
	}); err != nil {
		t.Fatal(err)
	}
	f0, _ := ts.managers[0].Fragment(id)
	f0.(*dataitem.TreeFragment[int]).Set(region.Root, 1)
	f0.(*dataitem.TreeFragment[int]).Set(2, 2)
	ts.managers[0].Release(1)

	if err := ts.managers[1].Acquire(2, []Requirement{
		{Item: id, Region: right, Mode: Write},
		{Item: id, Region: root, Mode: Read},
	}); err != nil {
		t.Fatal(err)
	}
	f1, _ := ts.managers[1].Fragment(id)
	if got := f1.(*dataitem.TreeFragment[int]).At(region.Root); got != 1 {
		t.Fatalf("replicated tree root = %d, want 1", got)
	}
	f1.(*dataitem.TreeFragment[int]).Set(3, 3)
	ts.managers[1].Release(2)
}

func TestItemIDFormatting(t *testing.T) {
	id := MakeItemID(3, 7)
	if got := fmt.Sprint(id); got != "d3.7" {
		t.Fatalf("String = %q", got)
	}
}

func TestDistributedMapItem(t *testing.T) {
	typ := dataitem.NewMapType[string, int]("kv.dist", 8)
	ts := newTestSystem(t, 2, typ)
	id, err := ts.managers[0].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}

	// Rank 0 first-touches all buckets and fills the map.
	full := typ.FullRegion()
	if err := ts.managers[0].Acquire(1, []Requirement{{Item: id, Region: full, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag0, _ := ts.managers[0].Fragment(id)
	m0 := frag0.(*dataitem.MapFragment[string, int])
	keys := []string{"red", "green", "blue", "cyan", "teal", "plum"}
	for i, k := range keys {
		m0.Put(k, i*11)
	}
	ts.managers[0].Release(1)

	// Rank 1 takes write ownership of one key's bucket: the pairs of
	// that bucket migrate.
	k := keys[3]
	br := typ.BucketRegion(k)
	if err := ts.managers[1].Acquire(2, []Requirement{{Item: id, Region: br, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag1, _ := ts.managers[1].Fragment(id)
	m1 := frag1.(*dataitem.MapFragment[string, int])
	if v, ok := m1.Get(k); !ok || v != 33 {
		t.Fatalf("migrated map value = %d,%v", v, ok)
	}
	m1.Put(k, 999)
	ts.managers[1].Release(2)

	// Rank 0 reads the key back (replication of the bucket).
	if err := ts.managers[0].Acquire(3, []Requirement{{Item: id, Region: br, Mode: Read}}); err != nil {
		t.Fatal(err)
	}
	frag0b, _ := ts.managers[0].Fragment(id)
	if v, ok := frag0b.(*dataitem.MapFragment[string, int]).Get(k); !ok || v != 999 {
		t.Fatalf("replicated map value = %d,%v", v, ok)
	}
	ts.managers[0].Release(3)

	// All other keys must be intact wherever they live.
	owners, err := ts.managers[0].Owners(id, full)
	if err != nil {
		t.Fatal(err)
	}
	covered := dataitem.Region(dataitem.IntervalRegion{})
	for _, o := range owners {
		covered = covered.Union(o.Region)
	}
	if !covered.Equal(dataitem.Region(full)) {
		t.Fatalf("buckets lost: owners cover %v", covered)
	}
}
