package dim

import (
	"bytes"
	"encoding/gob"
)

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
