package dim

import "allscale/internal/wire"

// encodeWire and decodeWire delegate to the shared wire codec: the
// manager's request/reply headers have binary codecs (wirecodec.go)
// and anything else falls back to gob inside the codec.
func encodeWire(v any) ([]byte, error) { return wire.Encode(v) }

func decodeWire(data []byte, v any) error { return wire.Decode(data, v) }
