// Package dim implements the AllScale data item manager
// (Section 3.2): one manager instance per runtime process maintains
// fragments of data items, performs resizing, import and export
// operations, tracks the read/write lock state of locally maintained
// regions, and participates in the hierarchical distributed index of
// Fig. 5 used to locate regions (Algorithm 1).
package dim

import (
	"fmt"
	"sync"
	"time"

	"allscale/internal/dataitem"
	"allscale/internal/metrics"
	"allscale/internal/runtime"
)

// ItemID globally identifies a data item: the creating rank in the
// upper 32 bits, a creator-local sequence number in the lower 32.
type ItemID uint64

// MakeItemID composes an item ID.
func MakeItemID(rank int, seq uint32) ItemID {
	return ItemID(uint64(uint32(rank))<<32 | uint64(seq))
}

func (id ItemID) String() string { return fmt.Sprintf("d%d.%d", uint64(id)>>32, uint32(id)) }

// Mode distinguishes read-only from read/write data requirements
// (Definition 2.7).
type Mode int

const (
	// Read grants shared access; the manager may replicate the data.
	Read Mode = iota
	// Write grants exclusive access; the manager consolidates all
	// copies into the local fragment first (exclusive writes).
	Write
)

func (m Mode) String() string {
	if m == Write {
		return "write"
	}
	return "read"
}

// Requirement is one data requirement of a task: a region of one item
// accessed in the given mode.
type Requirement struct {
	Item   ItemID
	Region dataitem.Region
	Mode   Mode
}

// Located maps a region segment to the rank hosting it (the result
// relation of Algorithm 1).
type Located struct {
	Region dataitem.Region
	Rank   int
}

// lockEntry records one granted requirement.
type lockEntry struct {
	token  uint64
	mode   Mode
	region dataitem.Region
}

// sides holds the child coverage an inner index node maintains.
// Reports carry per-reporter version numbers so that out-of-order
// delivery (handlers run concurrently) cannot regress a side to a
// stale coverage.
type sides struct {
	left, right       dataitem.Region
	leftSeq, rightSeq uint64
}

// itemState is the per-item bookkeeping of one manager.
type itemState struct {
	typ   dataitem.Type
	frag  dataitem.Fragment
	locks []lockEntry
	// index maps level -> child coverages, for the levels at which
	// this rank hosts an inner node (level >= 2).
	index map[int]*sides
	// ver numbers the coverage reports this rank emits per hierarchy
	// level (level 1 = the leaf fragment), making reports monotonic.
	ver map[int]uint64
	// allocated is maintained only at the index root host: the union
	// of all element regions ever allocated, serializing first-touch
	// allocation claims.
	allocated dataitem.Region
	// lcache holds this rank's locate-cache entries for the item;
	// cgen guards in-flight cache fills against invalidations racing
	// the walk (see cache.go). Guarded by Manager.mu.
	lcache []lcEntry
	cgen   uint64
	// exclusive is the part of the local fragment provably holding the
	// item's only copy: grown by first-touch claims and completed write
	// acquisitions, shrunk by every export (any new replica of our data
	// must be fetched from us). Write staging and consolidation skip
	// the authoritative owners walk inside it (see cache.go).
	exclusive dataitem.Region
}

// Registry names under which the manager publishes its metrics.
const (
	MetricAcquires    = "dim.acquires"
	MetricLocates     = "dim.locates"
	MetricAcquireWait = "dim.acquire_wait"
	// MetricLocateRPCs counts outgoing index-resolution RPCs (batched
	// resolveBatch frames); on the steady-state hot path the locate
	// cache keeps it flat while MetricLocates keeps counting.
	MetricLocateRPCs = "dim.locate_rpcs"
	// Locate-cache effectiveness counters (DESIGN.md §6f).
	MetricLocateCacheHits   = "dim.locate_cache.hits"
	MetricLocateCacheMisses = "dim.locate_cache.misses"
	MetricLocateCacheInvals = "dim.locate_cache.invalidations"
)

// Manager is the data item manager instance of one locality.
type Manager struct {
	loc *runtime.Locality
	reg *dataitem.Registry

	// acquires/locates and the acquire-wait histogram live in the
	// locality-wide metrics registry.
	acquires    *metrics.Counter
	locates     *metrics.Counter
	acquireWait *metrics.Histogram
	locateRPCs  *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	cacheInvals *metrics.Counter

	mu     sync.Mutex
	cond   *sync.Cond
	items  map[ItemID]*itemState
	seq    uint32
	pinSeq uint64 // replica-pin token sequence (guarded by mu)
	// pins maps outstanding replica-pin tokens to the requesting rank,
	// so the pins of a crashed rank can be force-released instead of
	// blocking writers forever (guarded by mu).
	pins map[uint64]int
	// epoch is the recovery epoch (guarded by mu): index report
	// versions are composed as epoch<<32|ver, so a coverage retraction
	// (which raises the epoch and floors all side versions) bars every
	// stale pre-crash report from resurrecting dead coverage.
	epoch uint64
	// cacheOff disables the locate cache (ablations and the E13
	// before/after measurement). Guarded by mu.
	cacheOff bool

	// LockWaitTimeout bounds how long lock-conflict waits may block
	// before failing loudly; it converts application-level deadlocks
	// into errors instead of hangs.
	LockWaitTimeout time.Duration
}

// New creates the manager of loc and registers its services. All
// managers of a system must be created before the fabric starts.
func New(loc *runtime.Locality, reg *dataitem.Registry) *Manager {
	m := &Manager{
		loc:             loc,
		reg:             reg,
		acquires:        loc.Metrics().Counter(MetricAcquires),
		locates:         loc.Metrics().Counter(MetricLocates),
		acquireWait:     loc.Metrics().Histogram(MetricAcquireWait),
		locateRPCs:      loc.Metrics().Counter(MetricLocateRPCs),
		cacheHits:       loc.Metrics().Counter(MetricLocateCacheHits),
		cacheMisses:     loc.Metrics().Counter(MetricLocateCacheMisses),
		cacheInvals:     loc.Metrics().Counter(MetricLocateCacheInvals),
		items:           make(map[ItemID]*itemState),
		pins:            make(map[uint64]int),
		LockWaitTimeout: 60 * time.Second,
	}
	m.cond = sync.NewCond(&m.mu)
	m.registerServices()
	return m
}

// Rank returns the hosting locality's rank.
func (m *Manager) Rank() int { return m.loc.Rank() }

// size returns the number of processes.
func (m *Manager) size() int { return m.loc.Size() }

// ctlOpt and dataOpt bind the locality's delivery profiles to the
// manager's RPCs: index/metadata traffic rides the control-plane
// policy (bounded deadline, retries with server-side dedup — index
// mutations execute exactly once on a lossy fabric), while bulk
// fragment transfers ride the data-plane policy (unbounded by
// default, so large transfers on slow links keep their historical
// semantics unless the profile opts in).
func (m *Manager) ctlOpt() runtime.CallOption { return runtime.WithSpec(m.loc.ControlSpec()) }

func (m *Manager) dataOpt() runtime.CallOption { return runtime.WithSpec(m.loc.DataSpec()) }

// ---------------------------------------------------------------
// Process hierarchy geometry (Fig. 5)
// ---------------------------------------------------------------

// rootLevel returns the level of the hierarchy root: the smallest l
// with 2^(l-1) >= P. Level 1 is the leaf level.
func rootLevel(p int) int {
	l := 1
	for (1 << uint(l-1)) < p {
		l++
	}
	return l
}

// hostsNode reports whether process i hosts the (unique) inner node
// at level l of the hierarchy; the role of inner nodes is assumed by
// the left-most process of their subtree.
func hostsNode(i, l int) bool { return i%(1<<uint(l-1)) == 0 }

// parentHost returns the process hosting the parent (at level l+1) of
// the node at level l hosted by process i.
func parentHost(i, l int) int { return i - i%(1<<uint(l)) }

// rightChildHost returns the process hosting the right child (at
// level l-1) of the inner node at level l hosted by process i.
func rightChildHost(i, l int) int { return i + 1<<uint(l-2) }

// subtreeSpan returns the process range [lo, hi) covered by the node
// at level l hosted by process i.
func subtreeSpan(i, l int) (int, int) { return i, i + 1<<uint(l-1) }

// nodeLo returns the lowest process rank of the subtree of the level-l
// node containing process i — the node's identity, independent of
// which (live) process currently hosts it.
func nodeLo(i, l int) int { return i - i%(1<<uint(l-1)) }

// liveHost returns the process hosting the node whose subtree starts
// at lo on level l once dead and non-member ranks are excluded: the
// left-most live member of the subtree (the hostsNode rule
// degenerates to this with full membership and zero deaths). Returns
// -1 when the whole subtree is dead or outside the membership.
// Because a rank is the left-most live member of at most one subtree
// per level, a rank still hosts at most one node per level. Treating
// latent ranks as holes and letting a join fill them back in is what
// generalizes the crash-time hole routing to *insertion*: admitting a
// rank shifts hosts within its subtree, which is why a membership
// change rebuilds the index (retract → republish) under a fresh
// epoch.
func (m *Manager) liveHost(lo, l int) int {
	hi := lo + 1<<uint(l-1)
	if hi > m.size() {
		hi = m.size()
	}
	for r := lo; r < hi; r++ {
		if m.loc.IsMember(r) && !m.loc.IsDead(r) {
			return r
		}
	}
	return -1
}

// stampLocked composes the full report version of a locally emitted
// index report from the recovery epoch and the per-level counter.
// Callers must hold m.mu.
func (m *Manager) stampLocked(ver uint64) uint64 { return m.epoch<<32 | ver }
