package dim

import (
	"testing"

	"allscale/internal/dataitem"
	"allscale/internal/region"
	"allscale/internal/runtime"
	"allscale/internal/transport"
)

// TestManagerOverTCP runs the full data item manager protocol —
// create, first-touch allocation, index reporting, Algorithm 1
// lookup, migration and replication — over real TCP loopback
// endpoints instead of the in-process fabric, demonstrating that the
// runtime is genuinely message-based (the exchangeable communication
// layer of Section 3.2).
func TestManagerOverTCP(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	eps := make([]*transport.TCPEndpoint, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPEndpoint(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		defer ep.Close()
	}
	actual := make([]string, n)
	for i, ep := range eps {
		actual[i] = ep.Addr()
	}
	for _, ep := range eps {
		ep.SetAddrs(actual)
	}

	typ := dataitem.NewGridType[int]("tcp.field", region.Point{12, 4})
	managers := make([]*Manager, n)
	for i := 0; i < n; i++ {
		loc := runtime.NewLocality(eps[i])
		loc.RegisterPromiseService()
		reg := dataitem.NewRegistry()
		reg.MustRegister(typ)
		managers[i] = New(loc, reg)
	}

	id, err := managers[0].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}

	// Each rank first-touches one band; data and index updates flow
	// over TCP.
	for i := 0; i < n; i++ {
		band := dataitem.GridRegionFromTo(region.Point{4 * i, 0}, region.Point{4 * (i + 1), 4})
		if err := managers[i].Acquire(uint64(i+1), []Requirement{{Item: id, Region: band, Mode: Write}}); err != nil {
			t.Fatalf("rank %d acquire: %v", i, err)
		}
		frag, _ := managers[i].Fragment(id)
		frag.(*dataitem.GridFragment[int]).Set(region.Point{4 * i, 0}, 100+i)
		managers[i].Release(uint64(i + 1))
	}

	// Lookup across the whole item from rank 2.
	found, err := managers[2].Lookup(id, dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{12, 4}))
	if err != nil {
		t.Fatal(err)
	}
	covered := dataitem.Region(dataitem.GridRegion{})
	for _, e := range found {
		covered = covered.Union(e.Region)
	}
	if covered.Size() != 48 {
		t.Fatalf("lookup covered %d elements, want 48", covered.Size())
	}

	// Migrate everything to rank 1 by write acquisition; values must
	// survive the TCP transfer.
	full := dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{12, 4})
	if err := managers[1].Acquire(99, []Requirement{{Item: id, Region: full, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	frag, _ := managers[1].Fragment(id)
	g := frag.(*dataitem.GridFragment[int])
	for i := 0; i < n; i++ {
		if got := g.At(region.Point{4 * i, 0}); got != 100+i {
			t.Fatalf("band %d value = %d after TCP migration, want %d", i, got, 100+i)
		}
	}
	managers[1].Release(99)

	// Replicate back to rank 0 for reading.
	if err := managers[0].Acquire(7, []Requirement{{Item: id, Region: full, Mode: Read}}); err != nil {
		t.Fatal(err)
	}
	frag0, _ := managers[0].Fragment(id)
	if got := frag0.(*dataitem.GridFragment[int]).At(region.Point{8, 0}); got != 102 {
		t.Fatalf("replicated value over TCP = %d", got)
	}
	managers[0].Release(7)

	if err := managers[0].DestroyItem(id); err != nil {
		t.Fatal(err)
	}

	// The whole protocol ran over TCP: traffic must be counted, and a
	// healthy loopback fabric must report no failures.
	var msgs uint64
	for i, ep := range eps {
		st := ep.Stats()
		msgs += st.MsgsSent
		if st.SendErrors != 0 || st.DroppedFrames != 0 || st.Reconnects != 0 {
			t.Fatalf("rank %d reports transport failures on healthy loopback: %+v", i, st)
		}
	}
	if msgs == 0 {
		t.Fatal("DIM protocol over TCP sent zero messages")
	}
}
