package dim

import (
	"testing"
	"time"

	"allscale/internal/chaos"
	"allscale/internal/dataitem"
	"allscale/internal/runtime"
	"allscale/internal/transport"
)

// counterAt reads a metrics counter of one rank.
func (ts *testSystem) counterAt(rank int, name string) uint64 {
	return ts.sys.Locality(rank).Metrics().CounterValue(name)
}

// TestLocateCacheSteadyStateZeroRPCs is the E13 steady-state
// assertion at the dim layer: once a resolution is cached, repeated
// lookups and owner queries of a stable distribution perform zero
// index RPCs — everything is served from the local cache.
func TestLocateCacheSteadyStateZeroRPCs(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(16, 16))
	ts := newTestSystem(t, 4, typ)
	id, err := ts.managers[1].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}
	r := gr(0, 0, 16, 8)
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[1].Release(1)

	m := ts.managers[0]
	reqs := []Requirement{{Item: id, Region: r, Mode: Read}}
	// Warm every query shape the hot path uses.
	if _, err := m.Lookup(id, r); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OwnersHint(id, r); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OwnersMulti(reqs); err != nil {
		t.Fatal(err)
	}

	rpcs := ts.counterAt(0, MetricLocateRPCs)
	hits := ts.counterAt(0, MetricLocateCacheHits)
	for i := 0; i < 50; i++ {
		if got, err := m.Lookup(id, r); err != nil || len(got) == 0 || got[0].Rank != 1 {
			t.Fatalf("lookup %d: %v %v", i, got, err)
		}
		if got, err := m.OwnersHint(id, r); err != nil || len(got) == 0 {
			t.Fatalf("owners hint %d: %v %v", i, got, err)
		}
		if got, err := m.OwnersMulti(reqs); err != nil || len(got) != 1 || len(got[0]) == 0 {
			t.Fatalf("owners multi %d: %v %v", i, got, err)
		}
	}
	if d := ts.counterAt(0, MetricLocateRPCs) - rpcs; d != 0 {
		t.Errorf("steady state issued %d locate RPCs, want 0", d)
	}
	if d := ts.counterAt(0, MetricLocateCacheHits) - hits; d < 150 {
		t.Errorf("cache hits grew by %d, want >= 150", d)
	}
}

// TestLocateCacheDisabledBypasses checks the ablation switch: with the
// cache off, every lookup walks (RPCs from a non-root rank) and no
// hits are recorded.
func TestLocateCacheDisabledBypasses(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	for _, m := range ts.managers {
		m.SetLocateCache(false)
	}
	id, _ := ts.managers[1].CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[1].Release(1)

	m := ts.managers[3] // hosts no inner node of the 4-rank hierarchy
	rpcs := ts.counterAt(3, MetricLocateRPCs)
	for i := 0; i < 5; i++ {
		if _, err := m.Lookup(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if d := ts.counterAt(3, MetricLocateRPCs) - rpcs; d < 5 {
		t.Errorf("cache-off lookups issued %d RPCs, want >= 5", d)
	}
	if h := ts.counterAt(3, MetricLocateCacheHits); h != 0 {
		t.Errorf("cache-off recorded %d hits", h)
	}
}

// TestLocateCacheMigrationInvalidation is the staleness test of
// coherence rule 2: warm caches on bystander ranks must be revoked by
// a migration before it completes, so no rank keeps resolving to the
// old owner.
func TestLocateCacheMigrationInvalidation(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[1].Release(1)

	// Warm bystander caches on ranks 0 and 2: both map r to rank 1.
	for _, br := range []int{0, 2} {
		if got, err := ts.managers[br].Lookup(id, r); err != nil || len(got) == 0 || got[0].Rank != 1 {
			t.Fatalf("rank %d warm lookup = %v, %v", br, got, err)
		}
		if _, err := ts.managers[br].OwnersHint(id, r); err != nil {
			t.Fatal(err)
		}
	}

	// Migrate: an exclusive write on rank 3 removes rank 1's copy.
	if err := ts.managers[3].Acquire(2, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[3].Release(2)

	// The bystanders' caches were revoked synchronously: resolutions
	// must now name rank 3 only — never the old owner.
	for _, br := range []int{0, 2} {
		got, err := ts.managers[br].Lookup(id, r)
		if err != nil {
			t.Fatalf("rank %d: %v", br, err)
		}
		for _, loc := range got {
			if loc.Rank == 1 {
				t.Fatalf("rank %d still resolves to the old owner: %+v", br, got)
			}
		}
		if len(got) == 0 || got[0].Rank != 3 {
			t.Fatalf("rank %d lookup after migration = %+v, want rank 3", br, got)
		}
		owners, err := ts.managers[br].Owners(id, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, loc := range owners {
			if loc.Rank == 1 {
				t.Fatalf("rank %d owners names old owner: %+v", br, owners)
			}
		}
	}
	// A real read staging driven by the (re-walked) resolution works.
	if err := ts.managers[0].Acquire(3, []Requirement{{Item: id, Region: gr(0, 0, 4, 4), Mode: Read}}); err != nil {
		t.Fatalf("read staging after migration: %v", err)
	}
	ts.managers[0].Release(3)
}

// TestLocateCacheEpochAndDeathEviction checks the fences of rule
// "never resurrect dead ownership": an entry filled under an older
// recovery epoch misses, RetractEpoch clears wholesale, and an entry
// naming a rank that has since been declared dead is dropped on sight.
func TestLocateCacheEpochAndDeathEviction(t *testing.T) {
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := gr(0, 0, 8, 8)
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[1].Release(1)

	m := ts.managers[0]
	if _, err := m.Lookup(id, r); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.cacheGet(id, dataitem.Region(r), false); !ok {
		t.Fatal("warm entry missing")
	}

	// Epoch fence: an entry stamped under an older epoch must miss
	// even if RetractEpoch's wholesale clear were skipped.
	m.mu.Lock()
	m.epoch++
	m.mu.Unlock()
	if _, ok := m.cacheGet(id, dataitem.Region(r), false); ok {
		t.Fatal("entry from an older epoch served")
	}

	// Refill under the new epoch, then retract: wholesale clear.
	gen := m.cacheGen(id)
	m.cachePut(id, dataitem.Region(r), false, []Located{{Rank: 1, Region: dataitem.Region(r)}}, gen)
	if _, ok := m.cacheGet(id, dataitem.Region(r), false); !ok {
		t.Fatal("refill under current epoch missing")
	}
	m.RetractEpoch(m.Epoch() + 1)
	if _, ok := m.cacheGet(id, dataitem.Region(r), false); ok {
		t.Fatal("entry survived RetractEpoch")
	}

	// Death fence: a cached entry naming a now-dead rank is dropped.
	gen = m.cacheGen(id)
	m.cachePut(id, dataitem.Region(r), false, []Located{{Rank: 1, Region: dataitem.Region(r)}}, gen)
	ts.sys.Locality(0).MarkDead(1)
	if _, ok := m.cacheGet(id, dataitem.Region(r), false); ok {
		t.Fatal("entry naming a dead rank served")
	}
}

// TestLocateCacheMigrationUnderChaos drives repeated full-region
// migrations with warm bystander caches over a lossy, delaying,
// duplicating fabric (seeded): no acquire may fail or stall on a
// stale cached owner, and ownership must end at the last writer.
func TestLocateCacheMigrationUnderChaos(t *testing.T) {
	const n = 3
	ctl := chaos.NewController()
	fab := transport.NewFabric(n)
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = chaos.Wrap(fab.Endpoint(i), ctl, chaos.Config{
			Seed:     31 + int64(i),
			Drop:     0.02,
			Dup:      0.02,
			Delay:    0.2,
			MaxDelay: time.Millisecond,
		})
	}
	sys := runtime.NewSystemOver(eps)
	defer func() {
		sys.Close()
		fab.Close()
	}()
	// Tight retry windows: with the default 5s attempt interval every
	// dropped frame would cost seconds of wall clock.
	calls := runtime.CallProfile{
		Control: runtime.CallSpec{Deadline: 5 * time.Second, Attempt: 20 * time.Millisecond, Retries: 10},
		Data:    runtime.CallSpec{Deadline: 10 * time.Second, Attempt: 50 * time.Millisecond, Retries: 10},
	}
	typ := dataitem.NewGridType[int]("field", p(8, 8))
	ms := make([]*Manager, n)
	for i := 0; i < n; i++ {
		sys.Locality(i).SetCallProfile(calls)
		reg := dataitem.NewRegistry()
		reg.MustRegister(typ)
		ms[i] = New(sys.Locality(i), reg)
	}
	fab.Start()

	id, err := ms[0].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}
	full := gr(0, 0, 8, 8)
	sub := gr(0, 0, 4, 4)
	tok := uint64(0)
	next := func() uint64 { tok++; return tok }
	last := 0
	for i := 0; i < 18; i++ {
		w := i % n
		wt := next()
		if err := ms[w].Acquire(wt, []Requirement{{Item: id, Region: full, Mode: Write}}); err != nil {
			t.Fatalf("round %d: write at %d: %v", i, w, err)
		}
		ms[w].Release(wt)
		last = w
		// A bystander read warms its cache with the current owner —
		// the entry the next round's migration must revoke.
		rd := (w + 1) % n
		rt := next()
		if err := ms[rd].Acquire(rt, []Requirement{{Item: id, Region: sub, Mode: Read}}); err != nil {
			t.Fatalf("round %d: read at %d: %v", i, rd, err)
		}
		ms[rd].Release(rt)
		if _, err := ms[rd].OwnersHint(id, full); err != nil {
			t.Fatalf("round %d: owners hint at %d: %v", i, rd, err)
		}
	}
	// Exclusive consolidation: the full region lives only at `last`.
	final := next()
	if err := ms[last].Acquire(final, []Requirement{{Item: id, Region: full, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ms[last].Release(final)
	for r := 0; r < n; r++ {
		owners, err := ms[r].Owners(id, full)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		for _, loc := range owners {
			if loc.Rank != last && !loc.Region.IsEmpty() {
				t.Fatalf("rank %d: region %v still attributed to %d (owner %d): %+v",
					r, loc.Region, loc.Rank, last, owners)
			}
		}
	}
}

// BenchmarkLocateCache measures the cached resolution hot path
// against the uncached walk on a 4-rank in-process cluster.
func BenchmarkLocateCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "hit"
		if !cached {
			name = "walk"
		}
		b.Run(name, func(b *testing.B) {
			typ := dataitem.NewGridType[int]("field", p(16, 16))
			ts := newTestSystem(b, 4, typ)
			id, err := ts.managers[1].CreateItem(typ)
			if err != nil {
				b.Fatal(err)
			}
			r := gr(0, 0, 16, 16)
			if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
				b.Fatal(err)
			}
			ts.managers[1].Release(1)
			m := ts.managers[0]
			m.SetLocateCache(cached)
			if _, err := m.Lookup(id, r); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Lookup(id, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
