package dim

import (
	"fmt"
	"sort"

	"allscale/internal/wire"
)

// Crash-recovery support of the distributed index (DESIGN.md §6c).
//
// When a rank dies its leaf coverage lingers in the inner nodes of the
// Fig. 5 index, and reports it emitted before dying may still be in
// flight. Recovery proceeds in three system-wide phases driven by the
// recovery coordinator:
//
//  1. retract — every live manager raises its recovery epoch, clears
//     all inner-node sides, and floors their versions to epoch<<32, so
//     stale pre-crash reports (stamped with the old epoch) can never
//     resurrect dead coverage;
//  2. republish — every live manager re-reports all leaf coverages,
//     rebuilding the index over the post-crash live-host geometry;
//  3. syncAlloc — the (possibly new) index root host recomputes each
//     item's allocated set from the rebuilt root coverage, so
//     first-touch claims keep serializing correctly.

type retractArgs struct {
	Epoch uint64
}

// AppendWire implements wire.Marshaler.
func (a *retractArgs) AppendWire(buf []byte) ([]byte, error) {
	return wire.AppendUvarint(buf, a.Epoch), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *retractArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Epoch = d.Uvarint()
	return nil
}

const (
	methodRetract   = "dim.retract"
	methodRepublish = "dim.republish"
	methodSyncAlloc = "dim.syncAlloc"
)

func (m *Manager) registerRecoveryServices() {
	m.loc.Handle(methodRetract, rpc(m.handleRetract))
	m.loc.Handle(methodRepublish, rpc(m.handleRepublish))
	m.loc.Handle(methodSyncAlloc, rpc(m.handleSyncAlloc))
}

func (m *Manager) handleRetract(_ int, args *retractArgs) (*struct{}, error) {
	m.RetractEpoch(args.Epoch)
	return &struct{}{}, nil
}

func (m *Manager) handleRepublish(_ int, _ *struct{}) (*struct{}, error) {
	return &struct{}{}, m.Republish()
}

func (m *Manager) handleSyncAlloc(_ int, _ *struct{}) (*struct{}, error) {
	return &struct{}{}, m.SyncAllocatedFromIndex()
}

// RetractRemote drives phase 1 on a peer rank (self-calls short-
// circuit through the locality).
func (m *Manager) RetractRemote(rank int, epoch uint64) error {
	return m.loc.Call(rank, methodRetract, &retractArgs{Epoch: epoch}, nil, m.ctlOpt())
}

// RepublishRemote drives phase 2 on a peer rank.
func (m *Manager) RepublishRemote(rank int) error {
	return m.loc.Call(rank, methodRepublish, &struct{}{}, nil, m.ctlOpt())
}

// SyncAllocRemote drives phase 3 on the given rank, which must be the
// current live index root host.
func (m *Manager) SyncAllocRemote(rank int) error {
	return m.loc.Call(rank, methodSyncAlloc, &struct{}{}, nil, m.ctlOpt())
}

// RetractEpoch enters the given recovery epoch: all inner-node sides
// are cleared and their report versions floored to the epoch base, so
// every report stamped under an older epoch is stale on arrival. The
// epoch is monotonic; re-entering a current or older epoch still
// clears the sides (idempotent retraction).
func (m *Manager) RetractEpoch(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch > m.epoch {
		m.epoch = epoch
	}
	floor := m.epoch << 32
	for _, st := range m.items {
		for _, s := range st.index {
			s.left, s.right = st.typ.EmptyRegion(), st.typ.EmptyRegion()
			if s.leftSeq < floor {
				s.leftSeq = floor
			}
			if s.rightSeq < floor {
				s.rightSeq = floor
			}
		}
		// Every cached resolution predates the retraction and may name
		// the dead rank; sole-ownership proofs may rest on pre-crash
		// consolidations that the rollback can undo. Drop both.
		m.invalidateLocatesLocked(st)
		st.exclusive = st.typ.EmptyRegion()
	}
}

// Epoch returns the manager's current recovery epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Republish re-reports the leaf coverage of every item into the
// (retracted) index, in item order for determinism.
func (m *Manager) Republish() error {
	m.mu.Lock()
	ids := make([]ItemID, 0, len(m.items))
	for id := range m.items {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := m.reportUp(id); err != nil {
			return fmt.Errorf("dim: republish %v: %w", id, err)
		}
	}
	return nil
}

// SyncAllocatedFromIndex recomputes every item's allocated set from
// the rebuilt index root. It must run on the live index root host
// after all republishes: coverage owned by dead ranks leaves the
// allocated set, so survivors can re-allocate (first-touch) or restore
// (checkpoint import) it.
func (m *Manager) SyncAllocatedFromIndex() error {
	root := rootLevel(m.size())
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.items {
		if s := st.index[root]; s != nil {
			st.allocated = s.left.Union(s.right)
		} else {
			st.allocated = st.frag.Region()
		}
	}
	return nil
}

// ResetLocal force-replaces the local fragment of an item with the
// union of the given snapshots, without touching the index or the
// allocation claims: the caller (the recovery coordinator's rollback)
// republishes and re-syncs afterwards. An empty snapshot list resets
// the fragment to empty, discarding post-checkpoint growth.
func (m *Manager) ResetLocal(id ItemID, snaps []*LocalSnapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return err
	}
	region := st.typ.EmptyRegion()
	for _, s := range snaps {
		if s.Region != nil {
			region = region.Union(s.Region)
		}
	}
	if err := st.frag.Resize(region); err != nil {
		return err
	}
	for _, s := range snaps {
		if len(s.Data) > 0 {
			if _, err := st.frag.Insert(s.Data); err != nil {
				return err
			}
		}
	}
	// The fragment was force-replaced: cached maps and sole-ownership
	// proofs no longer describe reality.
	m.invalidateLocatesLocked(st)
	st.exclusive = st.typ.EmptyRegion()
	return nil
}

// ReleasePinsOf force-releases every replica pin held on behalf of the
// given (dead) rank. A pin is a temporary read lock the exporter holds
// until the importer confirms registration; a crashed importer never
// confirms, and without this its pins would block write consolidation
// until the lock-wait timeout.
func (m *Manager) ReleasePinsOf(rank int) {
	m.mu.Lock()
	var tokens []uint64
	for t, r := range m.pins {
		if r == rank {
			tokens = append(tokens, t)
		}
	}
	m.mu.Unlock()
	for _, t := range tokens {
		m.Release(t)
	}
}
