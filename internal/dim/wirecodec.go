package dim

import (
	"allscale/internal/dataitem"
	"allscale/internal/wire"
)

// Hand-written binary codecs for the DIM's request/reply headers
// (DESIGN.md §6a "Wire formats"). Region fields use the compact
// region wire form from the dataitem package; unknown dynamic region
// types still travel in its embedded gob envelope.

// AppendWire implements wire.Marshaler.
func (a *createArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.ID))
	return wire.AppendString(buf, a.TypeName), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *createArgs) UnmarshalWire(d *wire.Decoder) error {
	a.ID = ItemID(d.Uvarint())
	a.TypeName = d.String()
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *destroyArgs) AppendWire(buf []byte) ([]byte, error) {
	return wire.AppendUvarint(buf, uint64(a.ID)), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *destroyArgs) UnmarshalWire(d *wire.Decoder) error {
	a.ID = ItemID(d.Uvarint())
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *reportArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	buf = wire.AppendVarint(buf, int64(a.Level))
	buf = wire.AppendBool(buf, a.Left)
	buf, err := dataitem.AppendRegionWire(buf, a.Region)
	if err != nil {
		return nil, err
	}
	return wire.AppendUvarint(buf, a.Seq), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *reportArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	a.Level = d.Int()
	a.Left = d.Bool()
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	a.Seq = d.Uvarint()
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *resolveArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	buf, err := dataitem.AppendRegionWire(buf, a.Region)
	if err != nil {
		return nil, err
	}
	buf = wire.AppendVarint(buf, int64(a.Level))
	return wire.AppendBool(buf, a.Descend), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *resolveArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	a.Level = d.Int()
	a.Descend = d.Bool()
	return nil
}

// AppendWire implements wire.Marshaler.
func (r *resolveReply) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(len(r.Entries)))
	for _, e := range r.Entries {
		var err error
		buf, err = dataitem.AppendRegionWire(buf, e.Region)
		if err != nil {
			return nil, err
		}
		buf = wire.AppendVarint(buf, int64(e.Rank))
	}
	return buf, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *resolveReply) UnmarshalWire(d *wire.Decoder) error {
	n := int(d.Uvarint())
	for i := 0; i < n && d.Err() == nil; i++ {
		reg, err := dataitem.DecodeRegionWire(d)
		if err != nil {
			return err
		}
		r.Entries = append(r.Entries, Located{Region: reg, Rank: d.Int()})
	}
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *batchArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(len(a.Reqs)))
	for _, rq := range a.Reqs {
		buf = wire.AppendUvarint(buf, uint64(rq.Item))
		var err error
		buf, err = dataitem.AppendRegionWire(buf, rq.Region)
		if err != nil {
			return nil, err
		}
		buf = wire.AppendVarint(buf, int64(rq.Level))
		buf = wire.AppendBool(buf, rq.Descend)
		buf = wire.AppendBool(buf, rq.All)
	}
	return buf, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *batchArgs) UnmarshalWire(d *wire.Decoder) error {
	n := int(d.Uvarint())
	for i := 0; i < n && d.Err() == nil; i++ {
		var rq batchReq
		rq.Item = ItemID(d.Uvarint())
		r, err := dataitem.DecodeRegionWire(d)
		if err != nil {
			return err
		}
		rq.Region = r
		rq.Level = d.Int()
		rq.Descend = d.Bool()
		rq.All = d.Bool()
		a.Reqs = append(a.Reqs, rq)
	}
	return nil
}

// AppendWire implements wire.Marshaler.
func (r *batchReply) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(len(r.Replies)))
	for i := range r.Replies {
		var err error
		buf, err = r.Replies[i].AppendWire(buf)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *batchReply) UnmarshalWire(d *wire.Decoder) error {
	n := int(d.Uvarint())
	for i := 0; i < n && d.Err() == nil; i++ {
		var rep resolveReply
		if err := rep.UnmarshalWire(d); err != nil {
			return err
		}
		r.Replies = append(r.Replies, rep)
	}
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *fetchArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	buf, err := dataitem.AppendRegionWire(buf, a.Region)
	if err != nil {
		return nil, err
	}
	buf = wire.AppendBool(buf, a.Remove)
	return wire.AppendBool(buf, a.Pin), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *fetchArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	a.Remove = d.Bool()
	a.Pin = d.Bool()
	return nil
}

// AppendWire implements wire.Marshaler.
func (r *fetchReply) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendBytes(buf, r.Data)
	buf, err := dataitem.AppendRegionWire(buf, r.Part)
	if err != nil {
		return nil, err
	}
	buf = wire.AppendBool(buf, r.Empty)
	return wire.AppendUvarint(buf, r.PinToken), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *fetchReply) UnmarshalWire(d *wire.Decoder) error {
	r.Data = d.Bytes()
	part, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	r.Part = part
	r.Empty = d.Bool()
	r.PinToken = d.Uvarint()
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *unpinArgs) AppendWire(buf []byte) ([]byte, error) {
	return wire.AppendUvarint(buf, a.Token), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *unpinArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Token = d.Uvarint()
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *claimArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	return dataitem.AppendRegionWire(buf, a.Region)
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *claimArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	return nil
}

// AppendWire implements wire.Marshaler.
func (r *claimReply) AppendWire(buf []byte) ([]byte, error) {
	return dataitem.AppendRegionWire(buf, r.Granted)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *claimReply) UnmarshalWire(d *wire.Decoder) error {
	g, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	r.Granted = g
	return nil
}

// AppendWire implements wire.Marshaler.
func (a *dropArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	return dataitem.AppendRegionWire(buf, a.Region)
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *dropArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	return nil
}
