package dim

import (
	"fmt"

	"allscale/internal/dataitem"
)

// LocalSnapshot is the serialized content of one locality's fragment
// of one data item: the covered region plus the element data, as
// produced by ExportLocal and consumed by ImportLocal. It is the unit
// of the resilience manager's checkpoints.
type LocalSnapshot struct {
	Region dataitem.Region
	Data   []byte
}

// Items returns the IDs of all live data items known to this manager,
// in unspecified order.
func (m *Manager) Items() []ItemID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ItemID, 0, len(m.items))
	for id := range m.items {
		out = append(out, id)
	}
	return out
}

// TypeName returns the registered type name of an item.
func (m *Manager) TypeName(id ItemID) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return "", err
	}
	return st.typ.Name(), nil
}

// CoverageSize returns the element count of the local fragment.
func (m *Manager) CoverageSize(id ItemID) (int64, error) {
	cov, err := m.Coverage(id)
	if err != nil {
		return 0, err
	}
	return cov.Size(), nil
}

// ExportLocal serializes the locality's entire fragment of the item.
// The caller must ensure quiescence (no concurrent writers), e.g. by
// checkpointing between computation phases.
func (m *Manager) ExportLocal(id ItemID) (*LocalSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, err
	}
	cov := st.frag.Region()
	if cov.IsEmpty() {
		return &LocalSnapshot{Region: cov}, nil
	}
	data, err := st.frag.Extract(cov)
	if err != nil {
		return nil, err
	}
	return &LocalSnapshot{Region: cov, Data: data}, nil
}

// ImportLocal restores a snapshot into the local fragment: the region
// is registered as allocated with the index root (so later first-
// touch claims cannot double-allocate it), the fragment grows to
// cover it, the data is inserted, and the index is updated. Importing
// over existing coverage overwrites the intersection.
func (m *Manager) ImportLocal(id ItemID, snap *LocalSnapshot) error {
	if snap.Region == nil || snap.Region.IsEmpty() {
		return nil
	}
	// Mark the region allocated; the granted remainder is irrelevant —
	// the claim only serializes allocation bookkeeping.
	if _, err := m.claim(id, snap.Region); err != nil {
		return fmt.Errorf("dim: import claim: %w", err)
	}
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := st.frag.Resize(st.frag.Region().Union(snap.Region)); err != nil {
		m.mu.Unlock()
		return err
	}
	if _, err := st.frag.Insert(snap.Data); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return m.reportUp(id)
}

// VerifyIndex checks the Fig. 5 index invariant across a set of
// managers (one per rank of one system): every inner node's stored
// child coverages equal the union of the leaf coverages of the
// processes in the child subtree. A nil entry marks a dead rank: its
// leaf coverage must have been retracted (counts as empty) and inner
// nodes are expected at the left-most live rank of each subtree. It is
// a test and debugging aid.
func VerifyIndex(managers []*Manager, id ItemID) error {
	p := len(managers)
	liveHostIn := func(lo, l int) int {
		hi := lo + 1<<uint(l-1)
		if hi > p {
			hi = p
		}
		for i := lo; i < hi; i++ {
			if managers[i] != nil {
				return i
			}
		}
		return -1
	}
	var empty dataitem.Region
	leafCov := make([]dataitem.Region, p)
	for i, m := range managers {
		if m == nil {
			continue
		}
		cov, err := m.Coverage(id)
		if err != nil {
			return err
		}
		leafCov[i] = cov
		if empty == nil {
			empty = cov.Difference(cov)
		}
	}
	if empty == nil {
		return fmt.Errorf("dim: verify index: no live managers")
	}
	for i := range leafCov {
		if leafCov[i] == nil {
			leafCov[i] = empty
		}
	}
	unionOf := func(lo, hi int) dataitem.Region {
		u := empty
		for i := lo; i < hi && i < p; i++ {
			u = u.Union(leafCov[i])
		}
		return u
	}
	root := rootLevel(p)
	for l := 2; l <= root; l++ {
		span := 1 << uint(l-1)
		for lo := 0; lo < p; lo += span {
			host := liveHostIn(lo, l)
			if host < 0 {
				continue
			}
			m := managers[host]
			m.mu.Lock()
			st, err := m.itemLocked(id)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			s := st.index[l]
			var left, right dataitem.Region = st.typ.EmptyRegion(), st.typ.EmptyRegion()
			if s != nil {
				left, right = s.left, s.right
			}
			m.mu.Unlock()

			childSpan := span / 2
			if !left.Equal(unionOf(lo, lo+childSpan)) {
				return fmt.Errorf("dim: index node (%d,%d) left = %v, want %v", lo, l, left, unionOf(lo, lo+childSpan))
			}
			if lo+childSpan < p {
				if !right.Equal(unionOf(lo+childSpan, lo+span)) {
					return fmt.Errorf("dim: index node (%d,%d) right = %v, want %v", lo, l, right, unionOf(lo+childSpan, lo+span))
				}
			}
		}
	}
	return nil
}

// CheckSystemInvariants validates the Section 2.5 safety properties
// on the live system state of one item across all managers of a
// system (one per rank):
//
//   - satisfied requirements: every locked region is locally present;
//   - exclusive writes: a write-locked region has no copy on any
//     other rank.
//
// It is intended for quiescent or read-mostly points; checking while
// migrations are in flight can report transient multi-copy states of
// unlocked data (which the model permits).
func CheckSystemInvariants(managers []*Manager, id ItemID) error {
	type lockInfo struct {
		rank   int
		region dataitem.Region
	}
	var writes []lockInfo
	covs := make([]dataitem.Region, len(managers))
	for rank, m := range managers {
		cov, err := m.Coverage(id)
		if err != nil {
			return err
		}
		covs[rank] = cov
		read, write, err := m.LockedRegions(id)
		if err != nil {
			return err
		}
		for _, r := range append(read, write...) {
			if !r.Difference(cov).IsEmpty() {
				return fmt.Errorf("dim: rank %d holds lock on absent region %v (satisfied requirements)", rank, r.Difference(cov))
			}
		}
		for _, w := range write {
			writes = append(writes, lockInfo{rank: rank, region: w})
		}
	}
	for _, w := range writes {
		for rank, cov := range covs {
			if rank == w.rank {
				continue
			}
			if inter := cov.Intersect(w.region); !inter.IsEmpty() {
				return fmt.Errorf("dim: write-locked region %v of rank %d replicated at rank %d (exclusive writes)", inter, w.rank, rank)
			}
		}
	}
	return nil
}
