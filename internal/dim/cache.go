package dim

import (
	"allscale/internal/dataitem"
	"allscale/internal/runtime"
	"allscale/internal/wire"
)

// Locate cache (DESIGN.md §6f "Locality fast path").
//
// Every placement and every read-staging round used to walk the
// Fig. 5 index — O(log P) round trips concentrating on low-rank
// hosts. The cache keeps the []Located result of recent resolutions
// per (item, region) so the steady-state hot path resolves from local
// memory, under three coherence rules:
//
//  1. Entries may UNDERCOUNT ownership (a replica created elsewhere
//     after the fill is missed). That is harmless for every cache
//     consumer: placement hints and read staging only need some rank
//     that still holds the data. Growth therefore invalidates only
//     locally (cheap), never remotely.
//  2. Entries must never OVERCOUNT: a rank losing coverage (migration
//     export, replica drop) revokes intersecting entries on every
//     live peer — synchronously, before the loss is acknowledged to
//     the requester — so once a migration completes, no rank keeps
//     placing work or directing fetches at the old owner. A fill
//     racing the revocation is rejected by the per-item generation
//     stamp; the narrow window where a pre-revocation walk result is
//     still in flight self-corrects at use: an Empty fetch reply
//     invalidates the entry and forces an authoritative re-walk.
//  3. Write paths never trust the cache. Exclusive-writes enforcement
//     either proves sole ownership locally (the `exclusive` region:
//     grown by first-touch claims and completed write acquisitions,
//     shrunk by every export — any new copy of our data must be
//     fetched from us) or performs the authoritative owners walk.
//
// Crash retraction (RetractEpoch) drops every entry and the exclusive
// regions wholesale, and cache reads validate entry liveness, so a
// cached entry can never resurrect a dead rank's ownership.

// locateCacheCap bounds the number of cached resolutions per item;
// least-recently-used entries fall off the tail.
const locateCacheCap = 64

// lcEntry is one cached resolution of an item region.
type lcEntry struct {
	region  dataitem.Region
	all     bool // Owners-style (every copy) vs Lookup-style (first owner)
	entries []Located
	epoch   uint64
}

// methodCacheInval is the coverage-loss revocation RPC (rule 2).
const methodCacheInval = "dim.cinv"

type cinvArgs struct {
	Item   ItemID
	Region dataitem.Region
}

// AppendWire implements wire.Marshaler.
func (a *cinvArgs) AppendWire(buf []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, uint64(a.Item))
	return dataitem.AppendRegionWire(buf, a.Region)
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *cinvArgs) UnmarshalWire(d *wire.Decoder) error {
	a.Item = ItemID(d.Uvarint())
	r, err := dataitem.DecodeRegionWire(d)
	if err != nil {
		return err
	}
	a.Region = r
	return nil
}

func (m *Manager) handleCacheInval(_ int, args *cinvArgs) (*struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.items[args.Item]
	if !ok {
		return &struct{}{}, nil
	}
	m.dropIntersectingLocked(st, args.Region)
	return &struct{}{}, nil
}

// dropIntersectingLocked removes cached entries intersecting r and
// bumps the item's fill generation so in-flight walks cannot
// reinstate the revoked ownership. Callers hold m.mu.
func (m *Manager) dropIntersectingLocked(st *itemState, r dataitem.Region) {
	st.cgen++
	kept := st.lcache[:0]
	dropped := 0
	for _, e := range st.lcache {
		if e.region.Intersect(r).IsEmpty() {
			kept = append(kept, e)
		} else {
			dropped++
		}
	}
	st.lcache = kept
	if dropped > 0 {
		m.cacheInvals.Add(uint64(dropped))
	}
}

// invalidateLocatesLocked drops every cached entry of the item (local
// coverage changed or an authoritative walk contradicted the cache).
// Callers hold m.mu.
func (m *Manager) invalidateLocatesLocked(st *itemState) {
	st.cgen++
	if n := len(st.lcache); n > 0 {
		st.lcache = st.lcache[:0]
		m.cacheInvals.Add(uint64(n))
	}
}

// InvalidateLocates drops the cached resolutions of id intersecting r
// on this rank only (the remote half is revokeLocates).
func (m *Manager) InvalidateLocates(id ItemID, r dataitem.Region) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.items[id]; ok {
		m.dropIntersectingLocked(st, r)
	}
}

// SetLocateCache enables or disables the locate cache (ablations and
// the E13 before/after measurement); disabling drops all entries.
func (m *Manager) SetLocateCache(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheOff = !on
	if !on {
		for _, st := range m.items {
			st.lcache = st.lcache[:0]
			st.cgen++
		}
	}
}

// cacheGet returns a cached resolution for (id, r, all). A hit
// requires the current recovery epoch and only live, unsuspected
// ranks among the entries — an entry naming a dead or suspect rank is
// dropped on sight, so a cached map can never resurrect retracted
// ownership. The returned slice is shared: callers must not mutate.
func (m *Manager) cacheGet(id ItemID, r dataitem.Region, all bool) ([]Located, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cacheOff {
		return nil, false
	}
	st, ok := m.items[id]
	if !ok {
		return nil, false
	}
	for i, e := range st.lcache {
		if e.all != all || !e.region.Equal(r) {
			continue
		}
		if e.epoch != m.epoch {
			st.lcache = append(st.lcache[:i], st.lcache[i+1:]...)
			m.cacheInvals.Inc()
			m.cacheMisses.Inc()
			return nil, false
		}
		for _, loc := range e.entries {
			if loc.Rank != m.Rank() && (m.loc.IsDead(loc.Rank) || m.loc.IsSuspect(loc.Rank)) {
				st.lcache = append(st.lcache[:i], st.lcache[i+1:]...)
				m.cacheInvals.Inc()
				m.cacheMisses.Inc()
				return nil, false
			}
		}
		// Move to front (LRU).
		if i > 0 {
			copy(st.lcache[1:i+1], st.lcache[:i])
			st.lcache[0] = e
		}
		m.cacheHits.Inc()
		return e.entries, true
	}
	m.cacheMisses.Inc()
	return nil, false
}

// cacheGen snapshots the item's fill generation before a walk.
func (m *Manager) cacheGen(id ItemID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.items[id]; ok {
		return st.cgen
	}
	return 0
}

// cachePut stores a walk result, unless an invalidation raced the
// walk (generation moved since the pre-walk snapshot) — a stale fill
// could otherwise reinstate ownership revoked mid-walk.
func (m *Manager) cachePut(id ItemID, r dataitem.Region, all bool, entries []Located, gen uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cacheOff {
		return
	}
	st, ok := m.items[id]
	if !ok || st.cgen != gen {
		return
	}
	cp := make([]Located, len(entries))
	copy(cp, entries)
	e := lcEntry{region: r, all: all, entries: cp, epoch: m.epoch}
	for i := range st.lcache {
		if st.lcache[i].all == all && st.lcache[i].region.Equal(r) {
			st.lcache[i] = e
			return
		}
	}
	if len(st.lcache) >= locateCacheCap {
		st.lcache = st.lcache[:locateCacheCap-1]
	}
	st.lcache = append(st.lcache, lcEntry{})
	copy(st.lcache[1:], st.lcache)
	st.lcache[0] = e
}

// revokeLocates pushes a coverage loss to every live peer's cache
// (rule 2) and waits for the acknowledgements, so the loss is not
// observable anywhere before every stale claim of our ownership is
// gone. Must be called WITHOUT holding m.mu. Suspect or unreachable
// peers are skipped best-effort: they are excluded from placement
// anyway, and a surviving stale entry self-corrects through an Empty
// fetch at next use.
func (m *Manager) revokeLocates(id ItemID, r dataitem.Region, skip int) {
	if m.size() == 1 {
		return
	}
	args := &cinvArgs{Item: id, Region: r}
	futs := make(map[int]*runtime.Future, m.size())
	for rank := 0; rank < m.size(); rank++ {
		if rank == m.Rank() || rank == skip || m.loc.IsDead(rank) || m.loc.IsSuspect(rank) {
			continue
		}
		futs[rank] = m.loc.CallAsync(rank, methodCacheInval, args, m.ctlOpt())
	}
	for _, f := range futs {
		f.Wait() // best-effort: an error leaves a stale entry that self-corrects at use
	}
}

// ExclusivelyOwned reports whether the whole region is locally
// present and provably the item's only copy (rule 3): the write fast
// path that skips the authoritative owners walk.
func (m *Manager) ExclusivelyOwned(id ItemID, r dataitem.Region) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.items[id]
	if !ok {
		return false
	}
	return r.Difference(st.frag.Region()).IsEmpty() && r.Difference(st.exclusive).IsEmpty()
}
