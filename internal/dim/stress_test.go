package dim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"allscale/internal/dataitem"
	"allscale/internal/region"
)

// TestRandomizedAcquireReleaseKeepsInvariants drives the manager
// fleet with random concurrent acquisitions (disjoint writes per
// round, arbitrary reads) and checks after every round:
//
//   - the index invariant of Fig. 5 (VerifyIndex);
//   - exclusive writes: after a write acquisition the region has one
//     owner;
//   - value preservation: a counter value written per region survives
//     every migration/replication round.
func TestRandomizedAcquireReleaseKeepsInvariants(t *testing.T) {
	const (
		p      = 4
		rounds = 25
		bands  = 8
		w      = 4 // band width
	)
	typ := dataitem.NewGridType[int]("stress.field", region.Point{bands * w, 8})
	ts := newTestSystem(t, p, typ)
	id, err := ts.managers[0].CreateItem(typ)
	if err != nil {
		t.Fatal(err)
	}

	bandRegion := func(b int) dataitem.GridRegion {
		return dataitem.GridRegionFromTo(region.Point{b * w, 0}, region.Point{(b + 1) * w, 8})
	}

	// Initialize: rank b%p first-touches band b and stamps it.
	value := make([]int, bands)
	for b := 0; b < bands; b++ {
		rank := b % p
		tok := uint64(1000 + b)
		if err := ts.managers[rank].Acquire(tok, []Requirement{{Item: id, Region: bandRegion(b), Mode: Write}}); err != nil {
			t.Fatal(err)
		}
		frag, _ := ts.managers[rank].Fragment(id)
		value[b] = b * 100
		frag.(*dataitem.GridFragment[int]).Set(region.Point{b * w, 0}, value[b])
		ts.managers[rank].Release(tok)
	}

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		// Assign each band a random writer rank; also issue some
		// random concurrent readers.
		writer := make([]int, bands)
		for b := range writer {
			writer[b] = rng.Intn(p)
		}
		var wg sync.WaitGroup
		errs := make(chan error, bands*2)
		for b := 0; b < bands; b++ {
			b := b
			wg.Add(1)
			go func() {
				defer wg.Done()
				tok := uint64(round*10000 + b + 1)
				m := ts.managers[writer[b]]
				if err := m.Acquire(tok, []Requirement{{Item: id, Region: bandRegion(b), Mode: Write}}); err != nil {
					errs <- fmt.Errorf("round %d band %d write: %w", round, b, err)
					return
				}
				frag, _ := m.Fragment(id)
				g := frag.(*dataitem.GridFragment[int])
				at := region.Point{b * w, 0}
				if got := g.At(at); got != value[b] {
					errs <- fmt.Errorf("round %d band %d: value %d, want %d (data lost in migration)", round, b, got, value[b])
				}
				g.Set(at, value[b]+1)
				m.Release(tok)
			}()
			// Occasionally read a random band concurrently.
			if rng.Intn(2) == 0 {
				rb := rng.Intn(bands)
				reader := rng.Intn(p)
				wg.Add(1)
				go func() {
					defer wg.Done()
					tok := uint64(round*10000 + 5000 + rb + 1)
					m := ts.managers[reader]
					if err := m.Acquire(tok, []Requirement{{Item: id, Region: bandRegion(rb), Mode: Read}}); err != nil {
						errs <- fmt.Errorf("round %d band %d read: %w", round, rb, err)
						return
					}
					m.Release(tok)
				}()
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for b := range value {
			value[b]++
		}

		// Invariants after the round.
		if err := VerifyIndex(ts.managers, id); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for b := 0; b < bands; b++ {
			owners, err := ts.managers[0].Owners(id, bandRegion(b))
			if err != nil {
				t.Fatal(err)
			}
			primary := map[int]bool{}
			for _, o := range owners {
				primary[o.Rank] = true
			}
			if !primary[writer[b]] {
				t.Fatalf("round %d: band %d not owned by last writer %d (owners %v)", round, b, writer[b], owners)
			}
		}
	}

	// Final totals: all bands present exactly with their final values.
	for b := 0; b < bands; b++ {
		tok := uint64(777000 + b)
		m := ts.managers[0]
		if err := m.Acquire(tok, []Requirement{{Item: id, Region: bandRegion(b), Mode: Read}}); err != nil {
			t.Fatal(err)
		}
		frag, _ := m.Fragment(id)
		if got := frag.(*dataitem.GridFragment[int]).At(region.Point{b * w, 0}); got != value[b] {
			t.Fatalf("band %d final value %d, want %d", b, got, value[b])
		}
		m.Release(tok)
	}
}

// TestVerifyIndexDetectsCorruption ensures the checker itself works.
func TestVerifyIndexDetectsCorruption(t *testing.T) {
	typ := dataitem.NewGridType[int]("vi.field", region.Point{16, 4})
	ts := newTestSystem(t, 4, typ)
	id, _ := ts.managers[0].CreateItem(typ)
	r := dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{8, 4})
	if err := ts.managers[1].Acquire(1, []Requirement{{Item: id, Region: r, Mode: Write}}); err != nil {
		t.Fatal(err)
	}
	ts.managers[1].Release(1)
	if err := VerifyIndex(ts.managers, id); err != nil {
		t.Fatalf("clean index flagged: %v", err)
	}
	// Corrupt an inner node's stored coverage.
	m := ts.managers[0]
	m.mu.Lock()
	st := m.items[id]
	if s := st.index[2]; s != nil {
		s.left = dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{1, 1})
	} else {
		st.index[2] = &sides{
			left:  dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{1, 1}),
			right: typ.EmptyRegion(),
		}
	}
	m.mu.Unlock()
	if err := VerifyIndex(ts.managers, id); err == nil {
		t.Fatal("corrupted index not detected")
	}
}
