package dim

import (
	"fmt"
	"sort"
	"time"

	"allscale/internal/backoff"
	"allscale/internal/dataitem"
	"allscale/internal/trace"
)

// Wire argument structures of the manager's services. Region fields
// travel as gob interface values; all concrete region types register
// themselves with gob.
type (
	createArgs struct {
		ID       ItemID
		TypeName string
	}
	destroyArgs struct {
		ID ItemID
	}
	reportArgs struct {
		Item   ItemID
		Level  int // the parent's level receiving the report
		Left   bool
		Region dataitem.Region
		Seq    uint64
	}
	resolveArgs struct {
		Item    ItemID
		Region  dataitem.Region
		Level   int
		Descend bool
	}
	resolveReply struct {
		Entries []Located
	}
	fetchArgs struct {
		Item   ItemID
		Region dataitem.Region
		Remove bool
		// Pin asks the source to hold a temporary read lock on the
		// exported region until the caller confirms (dim.unpin) that
		// the new replica is registered in the index. Without it, a
		// concurrent write consolidation could miss the in-flight
		// replica and later be overwritten by its stale data.
		Pin bool
	}
	fetchReply struct {
		Data []byte
		// Part is the region actually exported — the request clipped
		// to the source's coverage at execution time.
		Part     dataitem.Region
		Empty    bool
		PinToken uint64
	}
	unpinArgs struct {
		Token uint64
	}
	claimArgs struct {
		Item   ItemID
		Region dataitem.Region
	}
	claimReply struct {
		Granted dataitem.Region
	}
	dropArgs struct {
		Item   ItemID
		Region dataitem.Region
	}
	// batchReq is one resolution sub-request of a dim.resolveBatch
	// frame; All selects full-descent (Owners-style) resolution.
	batchReq struct {
		Item    ItemID
		Region  dataitem.Region
		Level   int
		Descend bool
		All     bool
	}
	batchArgs struct {
		Reqs []batchReq
	}
	batchReply struct {
		Replies []resolveReply
	}
)

const (
	methodCreate     = "dim.create"
	methodDestroy    = "dim.destroy"
	methodReport     = "dim.report"
	methodResolve    = "dim.resolve"
	methodResolveAll = "dim.resolveAll"
	methodFetch      = "dim.fetch"
	methodClaim      = "dim.claim"
	methodDrop       = "dim.drop"
	methodUnpin      = "dim.unpin"
	// methodResolveBatch coalesces many resolution sub-requests into
	// one frame per target rank (DESIGN.md §6f).
	methodResolveBatch = "dim.resolveBatch"
)

func (m *Manager) registerServices() {
	m.loc.Handle(methodCreate, rpc(m.handleCreate))
	m.loc.Handle(methodDestroy, rpc(m.handleDestroy))
	m.loc.Handle(methodReport, rpc(m.handleReport))
	m.loc.Handle(methodResolve, rpc(m.handleResolve))
	m.loc.Handle(methodResolveAll, rpc(m.handleResolveAll))
	m.loc.Handle(methodFetch, rpc(m.handleFetch))
	m.loc.Handle(methodClaim, rpc(m.handleClaim))
	m.loc.Handle(methodDrop, rpc(m.handleDrop))
	m.loc.Handle(methodUnpin, rpc(m.handleUnpin))
	m.loc.Handle(methodResolveBatch, rpc(m.handleResolveBatch))
	m.loc.Handle(methodCacheInval, rpc(m.handleCacheInval))
	m.registerRecoveryServices()
}

// rpc adapts a typed handler to the runtime Method signature.
func rpc[A any, R any](fn func(from int, args *A) (*R, error)) func(int, []byte) ([]byte, error) {
	return func(from int, body []byte) ([]byte, error) {
		var args A
		if err := decodeWire(body, &args); err != nil {
			return nil, err
		}
		reply, err := fn(from, &args)
		if err != nil {
			return nil, err
		}
		return encodeWire(reply)
	}
}

// ---------------------------------------------------------------
// Item lifecycle
// ---------------------------------------------------------------

// CreateItem introduces a new data item of the given registered type
// to all processes of the system and returns its global ID
// ((create) transition). No memory is allocated yet.
func (m *Manager) CreateItem(typ dataitem.Type) (ItemID, error) {
	if _, err := m.reg.Lookup(typ.Name()); err != nil {
		return 0, fmt.Errorf("dim: create of unregistered type: %w", err)
	}
	m.mu.Lock()
	m.seq++
	id := MakeItemID(m.Rank(), m.seq)
	m.mu.Unlock()
	args := &createArgs{ID: id, TypeName: typ.Name()}
	for rank := 0; rank < m.size(); rank++ {
		// Latent ranks are included — their catalogs stay in sync so a
		// later join finds every item registered — but dead and departed
		// ranks are gone for good.
		if m.loc.IsDead(rank) || m.loc.IsDeparted(rank) {
			continue
		}
		if err := m.loc.Call(rank, methodCreate, args, nil, m.ctlOpt()); err != nil {
			return 0, fmt.Errorf("dim: create at rank %d: %w", rank, err)
		}
	}
	return id, nil
}

func (m *Manager) handleCreate(_ int, args *createArgs) (*struct{}, error) {
	typ, err := m.reg.Lookup(args.TypeName)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.items[args.ID]; dup {
		return nil, fmt.Errorf("dim: item %v already exists", args.ID)
	}
	m.items[args.ID] = &itemState{
		typ:       typ,
		frag:      typ.NewFragment(),
		index:     make(map[int]*sides),
		ver:       make(map[int]uint64),
		allocated: typ.EmptyRegion(),
		exclusive: typ.EmptyRegion(),
	}
	return &struct{}{}, nil
}

// DestroyItem removes the data item from all processes, releasing its
// fragments and locks ((destroy) transition).
func (m *Manager) DestroyItem(id ItemID) error {
	args := &destroyArgs{ID: id}
	for rank := 0; rank < m.size(); rank++ {
		if m.loc.IsDead(rank) || m.loc.IsDeparted(rank) {
			continue
		}
		if err := m.loc.Call(rank, methodDestroy, args, nil, m.ctlOpt()); err != nil {
			return fmt.Errorf("dim: destroy at rank %d: %w", rank, err)
		}
	}
	return nil
}

func (m *Manager) handleDestroy(_ int, args *destroyArgs) (*struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.items, args.ID)
	m.cond.Broadcast()
	return &struct{}{}, nil
}

func (m *Manager) itemLocked(id ItemID) (*itemState, error) {
	st, ok := m.items[id]
	if !ok {
		return nil, fmt.Errorf("dim: unknown item %v at rank %d", id, m.Rank())
	}
	return st, nil
}

// Coverage returns the region of the item currently present in this
// process's fragment.
func (m *Manager) Coverage(id ItemID) (dataitem.Region, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, err
	}
	return st.frag.Region(), nil
}

// Fragment exposes the local fragment of the item for task bodies;
// access is legitimate only under granted requirements.
func (m *Manager) Fragment(id ItemID) (dataitem.Fragment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, err
	}
	return st.frag, nil
}

// ---------------------------------------------------------------
// Hierarchical index maintenance (Fig. 5)
// ---------------------------------------------------------------

// reportUp propagates the local fragment coverage into the index,
// stamped with a fresh leaf report version.
func (m *Manager) reportUp(id ItemID) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	total := st.frag.Region()
	st.ver[1]++
	seq := m.stampLocked(st.ver[1])
	m.mu.Unlock()
	return m.propagate(id, m.Rank(), 1, total, seq)
}

// propagate walks the hierarchy upward from the node at (host i,
// level l) whose total coverage changed to `total` under report
// version seq, updating parents until the root. Local hops stay
// in-process; the first remote hop hands the walk to the parent's
// host via dim.report. Stale reports (older seq than the side's last
// applied one) terminate the walk — a newer report has already
// propagated past this point.
func (m *Manager) propagate(id ItemID, i, l int, total dataitem.Region, seq uint64) error {
	root := rootLevel(m.size())
	for l < root {
		// The node identity is its subtree's lowest rank; the parent's
		// host is the left-most live rank of the parent's subtree, so
		// the walk routes around dead ranks (and degenerates to the
		// static hostsNode assignment with zero deaths).
		plo := nodeLo(i, l+1)
		left := nodeLo(i, l) == plo
		p := m.liveHost(plo, l+1)
		if p != m.Rank() {
			return m.loc.Call(p, methodReport, &reportArgs{Item: id, Level: l + 1, Left: left, Region: total, Seq: seq}, nil, m.ctlOpt())
		}
		next, nextSeq, fresh, err := m.applyReport(id, l+1, left, total, seq)
		if err != nil {
			return err
		}
		if !fresh {
			return nil
		}
		i, l, total, seq = plo, l+1, next, nextSeq
	}
	return nil
}

// applyReport stores a child's coverage at the inner node at `level`
// hosted here (unless the report is stale), returning the node's new
// total coverage and this node's own report version for the next hop.
func (m *Manager) applyReport(id ItemID, level int, left bool, region dataitem.Region, seq uint64) (dataitem.Region, uint64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, 0, false, err
	}
	s := st.index[level]
	if s == nil {
		s = &sides{left: st.typ.EmptyRegion(), right: st.typ.EmptyRegion()}
		st.index[level] = s
	}
	if left {
		if seq <= s.leftSeq {
			return nil, 0, false, nil
		}
		// A side losing coverage invalidates this rank's locate cache:
		// a cached map may point at the shrunk subtree. Pure growth is
		// harmless (rule 1 in cache.go) and keeps the warm entries.
		if !s.left.Difference(region).IsEmpty() {
			m.invalidateLocatesLocked(st)
		}
		s.leftSeq = seq
		s.left = region
	} else {
		if seq <= s.rightSeq {
			return nil, 0, false, nil
		}
		if !s.right.Difference(region).IsEmpty() {
			m.invalidateLocatesLocked(st)
		}
		s.rightSeq = seq
		s.right = region
	}
	st.ver[level]++
	return s.left.Union(s.right), m.stampLocked(st.ver[level]), true, nil
}

func (m *Manager) handleReport(_ int, args *reportArgs) (*struct{}, error) {
	total, seq, fresh, err := m.applyReport(args.Item, args.Level, args.Left, args.Region, args.Seq)
	if err != nil {
		return nil, err
	}
	if fresh {
		if err := m.propagate(args.Item, m.Rank(), args.Level, total, seq); err != nil {
			return nil, err
		}
	}
	return &struct{}{}, nil
}

// ---------------------------------------------------------------
// Region location resolution (Algorithm 1)
// ---------------------------------------------------------------

// Lookup locates the region r of item id, starting — as in
// Algorithm 1 — at this process's leaf and escalating toward the
// root. The result maps disjoint region segments to one hosting rank
// each; segments of r nowhere allocated are absent from the result.
// Cached resolutions are served from local memory; the span detail
// distinguishes "hit" from "walk".
func (m *Manager) Lookup(id ItemID, r dataitem.Region) ([]Located, error) {
	m.locates.Inc()
	if out, ok := m.cacheGet(id, r, false); ok {
		sp := m.loc.Tracer().Begin("dim.locate", "hit", 0)
		sp.SetTask(uint64(id))
		sp.End()
		return out, nil
	}
	sp := m.loc.Tracer().Begin("dim.locate", "walk", 0)
	sp.SetTask(uint64(id))
	gen := m.cacheGen(id)
	out, err := m.resolve(id, r, 1, false)
	if err == nil {
		m.cachePut(id, r, false, out, gen)
	}
	sp.SetErr(err)
	sp.End()
	return out, err
}

// resolve implements RESOLVE(d, r, l) on top of the batched engine.
// descend suppresses parent escalation for calls walking down into
// subtrees, guaranteeing termination.
func (m *Manager) resolve(id ItemID, r dataitem.Region, l int, descend bool) ([]Located, error) {
	res, err := m.resolveMulti([]batchReq{{Item: id, Region: r, Level: l, Descend: descend}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// resolveMulti is the batched resolution engine behind resolve,
// resolveAll and OwnersMulti: each request is processed against the
// locally hosted index nodes exactly as Algorithm 1 prescribes (leaf
// intersection, child-side consultation with remaining-region
// subtraction, parent escalation), but instead of issuing one RPC per
// request per hierarchy level, every remote sub-request a local pass
// produces — right children at any level, parent escalations — is
// coalesced into a single dim.resolveBatch frame per target rank.
// The remote side recurses with the same batching, so a full walk
// costs O(log P) frames regardless of the requirement count.
func (m *Manager) resolveMulti(reqs []batchReq) ([][]Located, error) {
	out := make([][]Located, len(reqs))
	type remoteSub struct {
		req batchReq
		idx int
	}
	remotes := make(map[int][]remoteSub)
	var order []int

	var process func(idx int, rq batchReq) error
	process = func(idx int, rq batchReq) error {
		r := rq.Region
		if r == nil || r.IsEmpty() {
			return nil
		}
		l := rq.Level
		if l == 1 {
			// Leaf level: add the local share to the result.
			m.mu.Lock()
			st, err := m.itemLocked(rq.Item)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			cov := st.frag.Region()
			m.mu.Unlock()
			ri := r.Intersect(cov)
			if !ri.IsEmpty() {
				out[idx] = append(out[idx], Located{Region: ri, Rank: m.Rank()})
				r = r.Difference(ri)
			}
		} else {
			// Inner level: consult the children.
			m.mu.Lock()
			st, err := m.itemLocked(rq.Item)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			var lr, rr dataitem.Region = st.typ.EmptyRegion(), st.typ.EmptyRegion()
			if s := st.index[l]; s != nil {
				lr, rr = s.left, s.right
			}
			m.mu.Unlock()

			lo := nodeLo(m.Rank(), l)
			half := 1 << uint(l-2)
			if sub := r.Intersect(lr); !sub.IsEmpty() {
				// The host of an inner node is the left-most live rank of
				// its subtree, so a live left child is always hosted here;
				// a fully-dead left child (until its coverage is retracted)
				// has no reachable data and stays unresolved.
				if m.liveHost(lo, l-1) == m.Rank() {
					if err := process(idx, batchReq{Item: rq.Item, Region: sub, Level: l - 1, Descend: true, All: rq.All}); err != nil {
						return err
					}
					if !rq.All {
						r = r.Difference(lr)
					}
				}
			}
			if rc := m.liveHost(lo+half, l-1); rc >= 0 && (rq.All || !r.IsEmpty()) {
				if sub := r.Intersect(rr); !sub.IsEmpty() {
					child := batchReq{Item: rq.Item, Region: sub, Level: l - 1, Descend: true, All: rq.All}
					if rc == m.Rank() {
						// The whole left subtree is dead and this rank took
						// over the right child too: descend locally.
						if err := process(idx, child); err != nil {
							return err
						}
					} else {
						if _, seen := remotes[rc]; !seen {
							order = append(order, rc)
						}
						remotes[rc] = append(remotes[rc], remoteSub{req: child, idx: idx})
					}
					if !rq.All {
						r = r.Difference(rr)
					}
				}
			}
		}

		// All-mode walks descend only; fully resolved or downward
		// lookup calls are done too.
		if rq.All || r.IsEmpty() || rq.Descend {
			return nil
		}
		// Escalate to the parent.
		if l < rootLevel(m.size()) {
			esc := batchReq{Item: rq.Item, Region: r, Level: l + 1}
			p := m.liveHost(nodeLo(m.Rank(), l+1), l+1)
			if p == m.Rank() {
				return process(idx, esc)
			}
			if _, seen := remotes[p]; !seen {
				order = append(order, p)
			}
			remotes[p] = append(remotes[p], remoteSub{req: esc, idx: idx})
		}
		return nil
	}

	for i, rq := range reqs {
		if err := process(i, rq); err != nil {
			return nil, err
		}
	}
	// One frame per target rank for everything the local pass deferred.
	for _, dst := range order {
		subs := remotes[dst]
		args := &batchArgs{Reqs: make([]batchReq, len(subs))}
		for j, s := range subs {
			args.Reqs[j] = s.req
		}
		var reply batchReply
		m.locateRPCs.Inc()
		if err := m.loc.Call(dst, methodResolveBatch, args, &reply, m.ctlOpt()); err != nil {
			return nil, err
		}
		if len(reply.Replies) != len(subs) {
			return nil, fmt.Errorf("dim: resolveBatch reply size %d != %d", len(reply.Replies), len(subs))
		}
		for j, s := range subs {
			out[s.idx] = append(out[s.idx], reply.Replies[j].Entries...)
		}
	}
	return out, nil
}

func (m *Manager) handleResolveBatch(_ int, args *batchArgs) (*batchReply, error) {
	res, err := m.resolveMulti(args.Reqs)
	if err != nil {
		return nil, err
	}
	reply := &batchReply{Replies: make([]resolveReply, len(res))}
	for i, entries := range res {
		reply.Replies[i].Entries = entries
	}
	return reply, nil
}

func (m *Manager) handleResolve(_ int, args *resolveArgs) (*resolveReply, error) {
	entries, err := m.resolve(args.Item, args.Region, args.Level, args.Descend)
	if err != nil {
		return nil, err
	}
	return &resolveReply{Entries: entries}, nil
}

// Owners returns every copy of every segment of r: unlike Lookup it
// descends the whole hierarchy from the root and does not stop at the
// first owner, so replicated segments appear once per holding rank.
// The write-consolidation path uses it to enforce exclusive writes —
// which is why Owners is always an authoritative walk and never
// serves from the locate cache: a cached map may undercount replicas
// created after the fill, and a write consolidation that misses a
// replica breaks the exclusive-writes invariant. Placement and read
// staging use OwnersHint/OwnersMulti instead.
func (m *Manager) Owners(id ItemID, r dataitem.Region) ([]Located, error) {
	m.locates.Inc()
	sp := m.loc.Tracer().Begin("dim.locate", "owners", 0)
	sp.SetTask(uint64(id))
	gen := m.cacheGen(id)
	out, err := m.owners(id, r)
	if err == nil {
		m.cachePut(id, r, true, out, gen)
	}
	sp.SetErr(err)
	sp.End()
	return out, err
}

// OwnersHint is the cached variant of Owners for consumers that
// tolerate an undercounting map (placement, read staging): any rank
// listed still held the segment when the entry was filled, and every
// coverage loss revokes intersecting entries system-wide before it
// completes. The result must not be mutated.
func (m *Manager) OwnersHint(id ItemID, r dataitem.Region) ([]Located, error) {
	m.locates.Inc()
	if out, ok := m.cacheGet(id, r, true); ok {
		sp := m.loc.Tracer().Begin("dim.locate", "owners-hit", 0)
		sp.SetTask(uint64(id))
		sp.End()
		return out, nil
	}
	sp := m.loc.Tracer().Begin("dim.locate", "owners-walk", 0)
	sp.SetTask(uint64(id))
	gen := m.cacheGen(id)
	out, err := m.owners(id, r)
	if err == nil {
		m.cachePut(id, r, true, out, gen)
	}
	sp.SetErr(err)
	sp.End()
	return out, err
}

// OwnersMulti resolves the ownership of several requirements at once:
// cached entries are served from memory and the misses share one
// batched walk (one resolveBatch frame per rank per level instead of
// one RPC per requirement per level). The per-requirement results
// carry the OwnersHint staleness contract and must not be mutated.
func (m *Manager) OwnersMulti(reqs []Requirement) ([][]Located, error) {
	out := make([][]Located, len(reqs))
	var missIdx []int
	for i, rq := range reqs {
		m.locates.Inc()
		if ent, ok := m.cacheGet(rq.Item, rq.Region, true); ok {
			out[i] = ent
		} else {
			missIdx = append(missIdx, i)
		}
	}
	detail := "multi-hit"
	if len(missIdx) > 0 {
		detail = "multi-walk"
	}
	sp := m.loc.Tracer().Begin("dim.locate", detail, 0)
	defer sp.End()
	if len(missIdx) == 0 {
		return out, nil
	}
	root := rootLevel(m.size())
	rh := m.liveHost(0, root)
	if rh < 0 {
		err := fmt.Errorf("dim: no live index root host")
		sp.SetErr(err)
		return nil, err
	}
	breqs := make([]batchReq, len(missIdx))
	gens := make([]uint64, len(missIdx))
	for j, i := range missIdx {
		breqs[j] = batchReq{Item: reqs[i].Item, Region: reqs[i].Region, Level: root, Descend: true, All: true}
		gens[j] = m.cacheGen(reqs[i].Item)
	}
	var res [][]Located
	var err error
	if m.Rank() == rh {
		res, err = m.resolveMulti(breqs)
	} else {
		args := &batchArgs{Reqs: breqs}
		var reply batchReply
		m.locateRPCs.Inc()
		if err = m.loc.Call(rh, methodResolveBatch, args, &reply, m.ctlOpt()); err == nil {
			if len(reply.Replies) != len(breqs) {
				err = fmt.Errorf("dim: resolveBatch reply size %d != %d", len(reply.Replies), len(breqs))
			} else {
				res = make([][]Located, len(breqs))
				for j := range reply.Replies {
					res[j] = reply.Replies[j].Entries
				}
			}
		}
	}
	if err != nil {
		sp.SetErr(err)
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = res[j]
		m.cachePut(reqs[i].Item, reqs[i].Region, true, res[j], gens[j])
	}
	return out, nil
}

// owners performs the authoritative full-descent walk from the live
// index root.
func (m *Manager) owners(id ItemID, r dataitem.Region) ([]Located, error) {
	root := rootLevel(m.size())
	rh := m.liveHost(0, root)
	if rh < 0 {
		return nil, fmt.Errorf("dim: no live index root host")
	}
	if m.Rank() == rh {
		return m.resolveAll(id, r, root)
	}
	var reply resolveReply
	m.locateRPCs.Inc()
	if err := m.loc.Call(rh, methodResolveAll, &resolveArgs{Item: id, Region: r, Level: root}, &reply, m.ctlOpt()); err != nil {
		return nil, err
	}
	return reply.Entries, nil
}

// resolveAll is the full-descent resolution collecting every copy
// (replicated segments appear once per holding rank).
func (m *Manager) resolveAll(id ItemID, r dataitem.Region, l int) ([]Located, error) {
	res, err := m.resolveMulti([]batchReq{{Item: id, Region: r, Level: l, Descend: true, All: true}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

func (m *Manager) handleResolveAll(_ int, args *resolveArgs) (*resolveReply, error) {
	entries, err := m.resolveAll(args.Item, args.Region, args.Level)
	if err != nil {
		return nil, err
	}
	return &resolveReply{Entries: entries}, nil
}

// ---------------------------------------------------------------
// Data movement services
// ---------------------------------------------------------------

// handleFetch exports the requested region of the local fragment,
// optionally removing it (the export side of a migration). The
// operation waits until no conflicting locks are held: any lock
// blocks removal ((migrate) rule), while only write locks block
// copying ((replicate) rule).
func (m *Manager) handleFetch(from int, args *fetchArgs) (*fetchReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		st, err := m.itemLocked(args.Item)
		if err != nil {
			return nil, err
		}
		if !m.lockConflictLocked(st, args.Region, args.Remove) {
			part := args.Region.Intersect(st.frag.Region())
			if part.IsEmpty() {
				return &fetchReply{Empty: true}, nil
			}
			data, err := st.frag.Extract(part)
			if err != nil {
				return nil, err
			}
			// Any export ends our provable sole ownership of the
			// exported part: the importer holds a copy from now on
			// (rule 3 in cache.go).
			st.exclusive = st.exclusive.Difference(part)
			var pinToken uint64
			if args.Pin && !args.Remove {
				m.pinSeq++
				pinToken = 1<<63 | uint64(m.Rank())<<48 | m.pinSeq
				st.locks = append(st.locks, lockEntry{token: pinToken, mode: Read, region: part})
				m.pins[pinToken] = from
			}
			if args.Remove {
				rest := st.frag.Region().Difference(part)
				if err := st.frag.Resize(rest); err != nil {
					return nil, err
				}
				total := st.frag.Region()
				st.ver[1]++
				seq := m.stampLocked(st.ver[1])
				m.invalidateLocatesLocked(st)
				// Propagate and revoke peer caches outside the lock:
				// no rank may keep resolving the migrated part to this
				// rank once the fetch completes (rule 2 in cache.go).
				m.mu.Unlock()
				err := m.propagate(args.Item, m.Rank(), 1, total, seq)
				if err == nil {
					m.revokeLocates(args.Item, part, from)
				}
				m.mu.Lock()
				if err != nil {
					return nil, err
				}
				m.cond.Broadcast()
			}
			return &fetchReply{Data: data, Part: part, PinToken: pinToken}, nil
		}
		if err := m.waitLocked(deadline); err != nil {
			return nil, fmt.Errorf("dim: fetch of %v blocked on locks: %w", args.Item, err)
		}
	}
}

// handleDrop removes a region from the local fragment without
// returning its data; used to evict replicas. It waits until no lock
// overlaps the region (a locked replica must stay in place —
// satisfied requirements).
func (m *Manager) handleDrop(from int, args *dropArgs) (*struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		st, err := m.itemLocked(args.Item)
		if err != nil {
			return nil, err
		}
		if !m.lockConflictLocked(st, args.Region, true) {
			dropped := args.Region.Intersect(st.frag.Region())
			rest := st.frag.Region().Difference(args.Region)
			if err := st.frag.Resize(rest); err != nil {
				return nil, err
			}
			st.exclusive = st.exclusive.Difference(args.Region)
			total := st.frag.Region()
			st.ver[1]++
			seq := m.stampLocked(st.ver[1])
			m.invalidateLocatesLocked(st)
			m.mu.Unlock()
			err := m.propagate(args.Item, m.Rank(), 1, total, seq)
			if err == nil && !dropped.IsEmpty() {
				m.revokeLocates(args.Item, dropped, from)
			}
			m.mu.Lock()
			if err != nil {
				return nil, err
			}
			m.cond.Broadcast()
			return &struct{}{}, nil
		}
		if err := m.waitLocked(deadline); err != nil {
			return nil, fmt.Errorf("dim: drop of %v blocked on locks: %w", args.Item, err)
		}
	}
}

func (m *Manager) handleUnpin(_ int, args *unpinArgs) (*struct{}, error) {
	m.Release(args.Token)
	return &struct{}{}, nil
}

// DropReplica evicts the given region from rank's fragment.
func (m *Manager) DropReplica(rank int, id ItemID, r dataitem.Region) error {
	return m.loc.Call(rank, methodDrop, &dropArgs{Item: id, Region: r}, nil, m.ctlOpt())
}

// handleClaim serializes first-touch allocation at the index root
// host: the granted region is the not-yet-allocated part of the
// request, which the claimant must then allocate ((init) rule — the
// premise "not allocated anywhere" is decided here atomically).
func (m *Manager) handleClaim(_ int, args *claimArgs) (*claimReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(args.Item)
	if err != nil {
		return nil, err
	}
	granted := args.Region.Difference(st.allocated)
	st.allocated = st.allocated.Union(args.Region)
	return &claimReply{Granted: granted}, nil
}

// claim asks the root host which part of r this process may allocate.
func (m *Manager) claim(id ItemID, r dataitem.Region) (dataitem.Region, error) {
	rh := m.liveHost(0, rootLevel(m.size()))
	if rh < 0 {
		return nil, fmt.Errorf("dim: no live index root host")
	}
	var reply claimReply
	if err := m.loc.Call(rh, methodClaim, &claimArgs{Item: id, Region: r}, &reply, m.ctlOpt()); err != nil {
		return nil, err
	}
	return reply.Granted, nil
}

// ---------------------------------------------------------------
// Locks
// ---------------------------------------------------------------

// lockConflictLocked reports whether a lock overlaps region; when
// exclusive is set, read locks conflict too (migration), otherwise
// only write locks (replication).
func (m *Manager) lockConflictLocked(st *itemState, region dataitem.Region, exclusive bool) bool {
	for _, e := range st.locks {
		if e.mode == Write || exclusive {
			if !e.region.Intersect(region).IsEmpty() {
				return true
			}
		}
	}
	return false
}

// waitLocked blocks on the manager condition until the next
// broadcast, failing once deadline passes. A helper timer guarantees
// periodic wakeups so the deadline is observed.
func (m *Manager) waitLocked(deadline time.Time) error {
	if time.Now().After(deadline) {
		return fmt.Errorf("lock wait timed out after %v (application-level deadlock?)", m.LockWaitTimeout)
	}
	timer := time.AfterFunc(50*time.Millisecond, m.cond.Broadcast)
	defer timer.Stop()
	m.cond.Wait()
	return nil
}

// Acquire grants the task identified by token all given requirements,
// following the model's discipline that locks imply presence (the
// (start) rule takes locks only where the data already is):
//
//  1. stage — pull/allocate the required data into the local fragment
//     while holding no locks (so a staging task can never be part of
//     a wait cycle);
//  2. lock — atomically take all locks, provided no conflicting lock
//     exists and the staged coverage is still local (a racing
//     migration sends us back to staging);
//  3. validate — for write requirements, evict any replica that raced
//     in between staging and locking (restoring exclusive writes).
//
// On failure all locks of the token are released.
//
// Scheduling discipline: the task scheduler should avoid placing
// tasks with overlapping write requirements on different processes
// concurrently (Algorithm 2 routes by write requirement); such tasks
// are still executed correctly, but keep stealing the overlap from
// each other while racing for the lock.
func (m *Manager) Acquire(token uint64, reqs []Requirement) error {
	return m.AcquireFor(token, reqs, 0)
}

// AcquireFor is Acquire with an explicit parent span (the acquiring
// task's exec span), emitting a dim.acquire span and feeding the
// acquire-wait histogram with the stage-to-grant latency.
func (m *Manager) AcquireFor(token uint64, reqs []Requirement, parent trace.SpanID) error {
	m.acquires.Inc()
	sp := m.loc.Tracer().Begin("dim.acquire", "", parent)
	sp.SetTask(token)
	start := time.Now()
	err := m.acquire(token, reqs)
	m.acquireWait.Observe(time.Since(start))
	sp.SetErr(err)
	sp.End()
	return err
}

func (m *Manager) acquire(token uint64, reqs []Requirement) error {
	sorted := append([]Requirement(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Item < sorted[j].Item })

	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		for _, rq := range sorted {
			if err := m.ensureLocal(rq); err != nil {
				return err
			}
		}
		ok, err := m.tryLockAll(token, sorted, deadline)
		if err != nil {
			return err
		}
		if !ok {
			continue // coverage changed under us: re-stage
		}
		if err := m.enforceExclusive(sorted, deadline); err != nil {
			m.Release(token)
			return err
		}
		// The write regions are now locked, locally present and
		// single-copy: record provable sole ownership so repeat writers
		// skip the owners walk entirely (rule 3 in cache.go). Sound
		// because any later export shrinks the region again.
		m.mu.Lock()
		for _, rq := range sorted {
			if rq.Mode != Write {
				continue
			}
			if st, ok := m.items[rq.Item]; ok {
				st.exclusive = st.exclusive.Union(rq.Region)
			}
		}
		m.mu.Unlock()
		return nil
	}
}

// tryLockAll takes all locks atomically. It waits (until deadline)
// while conflicting locks exist; once conflict-free it verifies that
// the staged data is still locally present — if a concurrent
// migration stole it, it returns false so the caller re-stages.
func (m *Manager) tryLockAll(token uint64, reqs []Requirement, deadline time.Time) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		conflict := false
		for _, rq := range reqs {
			st, err := m.itemLocked(rq.Item)
			if err != nil {
				return false, err
			}
			for _, e := range st.locks {
				if e.token == token {
					continue
				}
				if (e.mode == Write || rq.Mode == Write) && !e.region.Intersect(rq.Region).IsEmpty() {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			if err := m.waitLocked(deadline); err != nil {
				return false, fmt.Errorf("dim: acquire at rank %d: %w", m.Rank(), err)
			}
			continue
		}
		// Conflict-free: is the staged coverage still here?
		for _, rq := range reqs {
			st, _ := m.itemLocked(rq.Item)
			if !rq.Region.Difference(st.frag.Region()).IsEmpty() {
				return false, nil
			}
		}
		for _, rq := range reqs {
			st, _ := m.itemLocked(rq.Item)
			st.locks = append(st.locks, lockEntry{token: token, mode: rq.Mode, region: rq.Region})
		}
		return true, nil
	}
}

// enforceExclusive restores single-copy ownership of all write
// regions after the locks are taken: replicas that raced in between
// staging and locking are pulled away from their holders. Holders of
// such replicas either finished staging (they run and release — a
// bounded wait) or have not registered them yet (then they are not in
// the index and their own fetch will wait on our write lock), so no
// wait cycle can form.
func (m *Manager) enforceExclusive(reqs []Requirement, deadline time.Time) error {
	for _, rq := range reqs {
		if rq.Mode != Write {
			continue
		}
		// Provable sole ownership (first-touch claims, prior write
		// acquisitions with no export since) makes the walk
		// unnecessary. Checked after the locks are taken, so no
		// replica can appear between the proof and the grant.
		if m.ExclusivelyOwned(rq.Item, rq.Region) {
			continue
		}
		for {
			owners, err := m.Owners(rq.Item, rq.Region)
			if err != nil {
				return err
			}
			foreign := owners[:0:0]
			for _, o := range owners {
				if o.Rank != m.Rank() {
					foreign = append(foreign, o)
				}
			}
			if len(foreign) == 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("dim: write region %v of %v keeps being re-replicated", rq.Region, rq.Item)
			}
			for _, o := range foreign {
				var reply fetchReply
				if err := m.loc.Call(o.Rank, methodFetch, &fetchArgs{Item: rq.Item, Region: o.Region, Remove: true}, &reply, m.dataOpt()); err != nil {
					return fmt.Errorf("dim: evict replica of %v from rank %d: %w", rq.Item, o.Rank, err)
				}
				// All copies hold equal values (exclusive writes), so
				// the pulled data simply refreshes our fragment.
				if !reply.Empty {
					if err := m.insertLocal(rq.Item, reply.Part, reply.Data); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Release drops all locks held by token.
func (m *Manager) Release(token uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pins, token)
	for _, st := range m.items {
		kept := st.locks[:0]
		for _, e := range st.locks {
			if e.token != token {
				kept = append(kept, e)
			}
		}
		st.locks = kept
	}
	m.cond.Broadcast()
}

// LockedRegions returns the currently locked regions of an item (for
// tests and monitoring).
func (m *Manager) LockedRegions(id ItemID) (read, write []dataitem.Region, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range st.locks {
		if e.mode == Write {
			write = append(write, e.region)
		} else {
			read = append(read, e.region)
		}
	}
	return read, write, nil
}

// ensureLocal stages one requirement's data into the local fragment.
//
// Hot path: a read requirement already covered locally, or a write
// requirement over a provably sole-copy region, returns before any
// resolution — zero index RPCs. Otherwise each round performs exactly
// one resolution (the locate cache for reads, the authoritative walk
// for writes and after a staleness signal) and tracks post-fetch
// coverage from the fetch replies instead of re-resolving mid-round.
func (m *Manager) ensureLocal(rq Requirement) error {
	cov, err := m.Coverage(rq.Item)
	if err != nil {
		return err
	}
	missing := rq.Region.Difference(cov)
	if missing.IsEmpty() && (rq.Mode == Read || m.ExclusivelyOwned(rq.Item, rq.Region)) {
		return nil
	}

	deadline := time.Now().Add(m.LockWaitTimeout)
	var bo *backoff.Timer
	authoritative := rq.Mode == Write
	for {
		// Coverage is purely local (no RPC): recompute per round, so
		// progress made by concurrent stagings on this rank counts.
		cov, err = m.Coverage(rq.Item)
		if err != nil {
			return err
		}
		missing = rq.Region.Difference(cov)
		if missing.IsEmpty() && rq.Mode == Read {
			return nil
		}
		var owners []Located
		if authoritative {
			owners, err = m.Owners(rq.Item, rq.Region)
		} else {
			owners, err = m.OwnersHint(rq.Item, rq.Region)
		}
		if err != nil {
			return err
		}
		foreign := owners[:0:0]
		var located dataitem.Region = rq.Region.Difference(rq.Region) // empty of right type
		for _, o := range owners {
			located = located.Union(o.Region)
			if o.Rank != m.Rank() {
				foreign = append(foreign, o)
			}
		}
		if missing.IsEmpty() && len(foreign) == 0 {
			return nil // write mode: sole copy confirmed
		}

		progressed, stale := false, false
		// Pull data from foreign holders.
		for _, o := range foreign {
			want := o.Region
			if rq.Mode == Read {
				// Only copy what is still missing locally.
				want = want.Intersect(missing)
				if want.IsEmpty() {
					continue
				}
			}
			var reply fetchReply
			err := m.loc.Call(o.Rank, methodFetch, &fetchArgs{
				Item: rq.Item, Region: want,
				Remove: rq.Mode == Write,
				Pin:    rq.Mode == Read,
			}, &reply, m.dataOpt())
			if err != nil {
				return fmt.Errorf("dim: fetch %v from rank %d: %w", rq.Item, o.Rank, err)
			}
			if reply.Empty {
				// The holder no longer covers the segment: the map was
				// stale (a cached entry racing a migration, or a walk
				// result overtaken by one). Drop the entry and resolve
				// authoritatively next round.
				m.InvalidateLocates(rq.Item, want)
				stale = true
				continue
			}
			// Grow only by what the source actually exported; a
			// concurrent migration may have shrunk it below `want`.
			insErr := m.insertLocal(rq.Item, reply.Part, reply.Data)
			if reply.PinToken != 0 {
				// The replica is registered (or the insert failed):
				// release the source pin either way.
				if err := m.loc.Call(o.Rank, methodUnpin, &unpinArgs{Token: reply.PinToken}, nil, m.ctlOpt()); err != nil {
					return err
				}
			}
			if insErr != nil {
				return insErr
			}
			cov = cov.Union(reply.Part)
			missing = missing.Difference(reply.Part)
			progressed = true
		}

		// Allocate never-touched parts (first-touch claim at the root).
		unresolved := rq.Region.Difference(cov).Difference(located)
		if !unresolved.IsEmpty() {
			granted, err := m.claim(rq.Item, unresolved)
			if err != nil {
				return err
			}
			if !granted.IsEmpty() {
				if err := m.growLocal(rq.Item, granted); err != nil {
					return err
				}
				cov = cov.Union(granted)
				missing = missing.Difference(granted)
				progressed = true
			}
			if !authoritative && !unresolved.Difference(granted).IsEmpty() {
				// Allocated somewhere our cached map does not know
				// about: the entry undercounts, re-walk.
				m.InvalidateLocates(rq.Item, unresolved)
				stale = true
			}
		}

		if stale {
			authoritative = true
		}
		if progressed {
			if bo != nil {
				bo.Reset()
			}
		} else if !stale {
			// Somebody else is mid-allocation or mid-report; back off
			// (randomized exponential, 100µs–2ms) until the index
			// reflects it.
			if bo == nil {
				bo = backoff.New(100*time.Microsecond, 2*time.Millisecond,
					int64(uint64(rq.Item))^int64(m.Rank())<<40^time.Now().UnixNano())
			}
			if bo.Sleep(deadline) != nil {
				return fmt.Errorf("dim: staging %v %v at rank %d made no progress", rq.Item, rq.Mode, m.Rank())
			}
		}
	}
}

// insertLocal grows the local fragment by region and inserts the
// transferred data.
func (m *Manager) insertLocal(id ItemID, region dataitem.Region, data []byte) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := st.frag.Resize(st.frag.Region().Union(region)); err != nil {
		m.mu.Unlock()
		return err
	}
	if _, err := st.frag.Insert(data); err != nil {
		m.mu.Unlock()
		return err
	}
	// Local coverage changed: cached maps for this item are out of
	// date here (they may undercount the new local copy).
	m.invalidateLocatesLocked(st)
	m.mu.Unlock()
	return m.reportUp(id)
}

// growLocal zero-allocates region in the local fragment. The region
// was granted by a first-touch claim, so it is provably this item's
// only copy until exported.
func (m *Manager) growLocal(id ItemID, region dataitem.Region) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := st.frag.Resize(st.frag.Region().Union(region)); err != nil {
		m.mu.Unlock()
		return err
	}
	st.exclusive = st.exclusive.Union(region)
	m.invalidateLocatesLocked(st)
	m.mu.Unlock()
	return m.reportUp(id)
}
