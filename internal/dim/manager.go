package dim

import (
	"fmt"
	"sort"
	"time"

	"allscale/internal/dataitem"
	"allscale/internal/trace"
)

// Wire argument structures of the manager's services. Region fields
// travel as gob interface values; all concrete region types register
// themselves with gob.
type (
	createArgs struct {
		ID       ItemID
		TypeName string
	}
	destroyArgs struct {
		ID ItemID
	}
	reportArgs struct {
		Item   ItemID
		Level  int // the parent's level receiving the report
		Left   bool
		Region dataitem.Region
		Seq    uint64
	}
	resolveArgs struct {
		Item    ItemID
		Region  dataitem.Region
		Level   int
		Descend bool
	}
	resolveReply struct {
		Entries []Located
	}
	fetchArgs struct {
		Item   ItemID
		Region dataitem.Region
		Remove bool
		// Pin asks the source to hold a temporary read lock on the
		// exported region until the caller confirms (dim.unpin) that
		// the new replica is registered in the index. Without it, a
		// concurrent write consolidation could miss the in-flight
		// replica and later be overwritten by its stale data.
		Pin bool
	}
	fetchReply struct {
		Data []byte
		// Part is the region actually exported — the request clipped
		// to the source's coverage at execution time.
		Part     dataitem.Region
		Empty    bool
		PinToken uint64
	}
	unpinArgs struct {
		Token uint64
	}
	claimArgs struct {
		Item   ItemID
		Region dataitem.Region
	}
	claimReply struct {
		Granted dataitem.Region
	}
	dropArgs struct {
		Item   ItemID
		Region dataitem.Region
	}
)

const (
	methodCreate     = "dim.create"
	methodDestroy    = "dim.destroy"
	methodReport     = "dim.report"
	methodResolve    = "dim.resolve"
	methodResolveAll = "dim.resolveAll"
	methodFetch      = "dim.fetch"
	methodClaim      = "dim.claim"
	methodDrop       = "dim.drop"
	methodUnpin      = "dim.unpin"
)

func (m *Manager) registerServices() {
	m.loc.Handle(methodCreate, rpc(m.handleCreate))
	m.loc.Handle(methodDestroy, rpc(m.handleDestroy))
	m.loc.Handle(methodReport, rpc(m.handleReport))
	m.loc.Handle(methodResolve, rpc(m.handleResolve))
	m.loc.Handle(methodResolveAll, rpc(m.handleResolveAll))
	m.loc.Handle(methodFetch, rpc(m.handleFetch))
	m.loc.Handle(methodClaim, rpc(m.handleClaim))
	m.loc.Handle(methodDrop, rpc(m.handleDrop))
	m.loc.Handle(methodUnpin, rpc(m.handleUnpin))
	m.registerRecoveryServices()
}

// rpc adapts a typed handler to the runtime Method signature.
func rpc[A any, R any](fn func(from int, args *A) (*R, error)) func(int, []byte) ([]byte, error) {
	return func(from int, body []byte) ([]byte, error) {
		var args A
		if err := decodeWire(body, &args); err != nil {
			return nil, err
		}
		reply, err := fn(from, &args)
		if err != nil {
			return nil, err
		}
		return encodeWire(reply)
	}
}

// ---------------------------------------------------------------
// Item lifecycle
// ---------------------------------------------------------------

// CreateItem introduces a new data item of the given registered type
// to all processes of the system and returns its global ID
// ((create) transition). No memory is allocated yet.
func (m *Manager) CreateItem(typ dataitem.Type) (ItemID, error) {
	if _, err := m.reg.Lookup(typ.Name()); err != nil {
		return 0, fmt.Errorf("dim: create of unregistered type: %w", err)
	}
	m.mu.Lock()
	m.seq++
	id := MakeItemID(m.Rank(), m.seq)
	m.mu.Unlock()
	args := &createArgs{ID: id, TypeName: typ.Name()}
	for rank := 0; rank < m.size(); rank++ {
		if err := m.loc.Call(rank, methodCreate, args, nil, m.ctlOpt()); err != nil {
			return 0, fmt.Errorf("dim: create at rank %d: %w", rank, err)
		}
	}
	return id, nil
}

func (m *Manager) handleCreate(_ int, args *createArgs) (*struct{}, error) {
	typ, err := m.reg.Lookup(args.TypeName)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.items[args.ID]; dup {
		return nil, fmt.Errorf("dim: item %v already exists", args.ID)
	}
	m.items[args.ID] = &itemState{
		typ:       typ,
		frag:      typ.NewFragment(),
		index:     make(map[int]*sides),
		ver:       make(map[int]uint64),
		allocated: typ.EmptyRegion(),
	}
	return &struct{}{}, nil
}

// DestroyItem removes the data item from all processes, releasing its
// fragments and locks ((destroy) transition).
func (m *Manager) DestroyItem(id ItemID) error {
	args := &destroyArgs{ID: id}
	for rank := 0; rank < m.size(); rank++ {
		if err := m.loc.Call(rank, methodDestroy, args, nil, m.ctlOpt()); err != nil {
			return fmt.Errorf("dim: destroy at rank %d: %w", rank, err)
		}
	}
	return nil
}

func (m *Manager) handleDestroy(_ int, args *destroyArgs) (*struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.items, args.ID)
	m.cond.Broadcast()
	return &struct{}{}, nil
}

func (m *Manager) itemLocked(id ItemID) (*itemState, error) {
	st, ok := m.items[id]
	if !ok {
		return nil, fmt.Errorf("dim: unknown item %v at rank %d", id, m.Rank())
	}
	return st, nil
}

// Coverage returns the region of the item currently present in this
// process's fragment.
func (m *Manager) Coverage(id ItemID) (dataitem.Region, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, err
	}
	return st.frag.Region(), nil
}

// Fragment exposes the local fragment of the item for task bodies;
// access is legitimate only under granted requirements.
func (m *Manager) Fragment(id ItemID) (dataitem.Fragment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, err
	}
	return st.frag, nil
}

// ---------------------------------------------------------------
// Hierarchical index maintenance (Fig. 5)
// ---------------------------------------------------------------

// reportUp propagates the local fragment coverage into the index,
// stamped with a fresh leaf report version.
func (m *Manager) reportUp(id ItemID) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	total := st.frag.Region()
	st.ver[1]++
	seq := m.stampLocked(st.ver[1])
	m.mu.Unlock()
	return m.propagate(id, m.Rank(), 1, total, seq)
}

// propagate walks the hierarchy upward from the node at (host i,
// level l) whose total coverage changed to `total` under report
// version seq, updating parents until the root. Local hops stay
// in-process; the first remote hop hands the walk to the parent's
// host via dim.report. Stale reports (older seq than the side's last
// applied one) terminate the walk — a newer report has already
// propagated past this point.
func (m *Manager) propagate(id ItemID, i, l int, total dataitem.Region, seq uint64) error {
	root := rootLevel(m.size())
	for l < root {
		// The node identity is its subtree's lowest rank; the parent's
		// host is the left-most live rank of the parent's subtree, so
		// the walk routes around dead ranks (and degenerates to the
		// static hostsNode assignment with zero deaths).
		plo := nodeLo(i, l+1)
		left := nodeLo(i, l) == plo
		p := m.liveHost(plo, l+1)
		if p != m.Rank() {
			return m.loc.Call(p, methodReport, &reportArgs{Item: id, Level: l + 1, Left: left, Region: total, Seq: seq}, nil, m.ctlOpt())
		}
		next, nextSeq, fresh, err := m.applyReport(id, l+1, left, total, seq)
		if err != nil {
			return err
		}
		if !fresh {
			return nil
		}
		i, l, total, seq = plo, l+1, next, nextSeq
	}
	return nil
}

// applyReport stores a child's coverage at the inner node at `level`
// hosted here (unless the report is stale), returning the node's new
// total coverage and this node's own report version for the next hop.
func (m *Manager) applyReport(id ItemID, level int, left bool, region dataitem.Region, seq uint64) (dataitem.Region, uint64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, 0, false, err
	}
	s := st.index[level]
	if s == nil {
		s = &sides{left: st.typ.EmptyRegion(), right: st.typ.EmptyRegion()}
		st.index[level] = s
	}
	if left {
		if seq <= s.leftSeq {
			return nil, 0, false, nil
		}
		s.leftSeq = seq
		s.left = region
	} else {
		if seq <= s.rightSeq {
			return nil, 0, false, nil
		}
		s.rightSeq = seq
		s.right = region
	}
	st.ver[level]++
	return s.left.Union(s.right), m.stampLocked(st.ver[level]), true, nil
}

func (m *Manager) handleReport(_ int, args *reportArgs) (*struct{}, error) {
	total, seq, fresh, err := m.applyReport(args.Item, args.Level, args.Left, args.Region, args.Seq)
	if err != nil {
		return nil, err
	}
	if fresh {
		if err := m.propagate(args.Item, m.Rank(), args.Level, total, seq); err != nil {
			return nil, err
		}
	}
	return &struct{}{}, nil
}

// ---------------------------------------------------------------
// Region location resolution (Algorithm 1)
// ---------------------------------------------------------------

// Lookup locates the region r of item id, starting — as in
// Algorithm 1 — at this process's leaf and escalating toward the
// root. The result maps disjoint region segments to one hosting rank
// each; segments of r nowhere allocated are absent from the result.
func (m *Manager) Lookup(id ItemID, r dataitem.Region) ([]Located, error) {
	m.locates.Inc()
	sp := m.loc.Tracer().Begin("dim.locate", "", 0)
	sp.SetTask(uint64(id))
	out, err := m.resolve(id, r, 1, false)
	sp.SetErr(err)
	sp.End()
	return out, err
}

// resolve implements RESOLVE(d, r, l). descend suppresses parent
// escalation for calls walking down into subtrees, guaranteeing
// termination.
func (m *Manager) resolve(id ItemID, r dataitem.Region, l int, descend bool) ([]Located, error) {
	if r.IsEmpty() {
		return nil, nil
	}
	var out []Located
	remaining := r

	if l == 1 {
		// Leaf level: add the local share to the result.
		m.mu.Lock()
		st, err := m.itemLocked(id)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		cov := st.frag.Region()
		m.mu.Unlock()
		ri := remaining.Intersect(cov)
		if !ri.IsEmpty() {
			out = append(out, Located{Region: ri, Rank: m.Rank()})
			remaining = remaining.Difference(ri)
		}
	} else {
		// Inner level: consult the children.
		m.mu.Lock()
		st, err := m.itemLocked(id)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		var lr, rr dataitem.Region = st.typ.EmptyRegion(), st.typ.EmptyRegion()
		if s := st.index[l]; s != nil {
			lr, rr = s.left, s.right
		}
		m.mu.Unlock()

		lo := nodeLo(m.Rank(), l)
		half := 1 << uint(l-2)
		if sub := remaining.Intersect(lr); !sub.IsEmpty() {
			// The host of an inner node is the left-most live rank of
			// its subtree, so a live left child is always hosted here;
			// a fully-dead left child (until its coverage is retracted)
			// has no reachable data and stays unresolved.
			if m.liveHost(lo, l-1) == m.Rank() {
				entries, err := m.resolve(id, sub, l-1, true)
				if err != nil {
					return nil, err
				}
				out = append(out, entries...)
				remaining = remaining.Difference(lr)
			}
		}
		if rc := m.liveHost(lo+half, l-1); rc >= 0 && !remaining.IsEmpty() {
			if sub := remaining.Intersect(rr); !sub.IsEmpty() {
				if rc == m.Rank() {
					// The whole left subtree is dead and this rank took
					// over the right child too: descend locally.
					entries, err := m.resolve(id, sub, l-1, true)
					if err != nil {
						return nil, err
					}
					out = append(out, entries...)
				} else {
					var reply resolveReply
					if err := m.loc.Call(rc, methodResolve, &resolveArgs{Item: id, Region: sub, Level: l - 1, Descend: true}, &reply, m.ctlOpt()); err != nil {
						return nil, err
					}
					out = append(out, reply.Entries...)
				}
				remaining = remaining.Difference(rr)
			}
		}
	}

	// Fully resolved, or a downward call: done.
	if remaining.IsEmpty() || descend {
		return out, nil
	}
	// Escalate to the parent.
	if l < rootLevel(m.size()) {
		p := m.liveHost(nodeLo(m.Rank(), l+1), l+1)
		if p == m.Rank() {
			entries, err := m.resolve(id, remaining, l+1, false)
			if err != nil {
				return nil, err
			}
			out = append(out, entries...)
		} else {
			var reply resolveReply
			if err := m.loc.Call(p, methodResolve, &resolveArgs{Item: id, Region: remaining, Level: l + 1}, &reply, m.ctlOpt()); err != nil {
				return nil, err
			}
			out = append(out, reply.Entries...)
		}
	}
	return out, nil
}

func (m *Manager) handleResolve(_ int, args *resolveArgs) (*resolveReply, error) {
	entries, err := m.resolve(args.Item, args.Region, args.Level, args.Descend)
	if err != nil {
		return nil, err
	}
	return &resolveReply{Entries: entries}, nil
}

// Owners returns every copy of every segment of r: unlike Lookup it
// descends the whole hierarchy from the root and does not stop at the
// first owner, so replicated segments appear once per holding rank.
// The write-consolidation path uses it to enforce exclusive writes.
func (m *Manager) Owners(id ItemID, r dataitem.Region) ([]Located, error) {
	m.locates.Inc()
	sp := m.loc.Tracer().Begin("dim.locate", "owners", 0)
	sp.SetTask(uint64(id))
	out, err := m.owners(id, r)
	sp.SetErr(err)
	sp.End()
	return out, err
}

func (m *Manager) owners(id ItemID, r dataitem.Region) ([]Located, error) {
	root := rootLevel(m.size())
	rh := m.liveHost(0, root)
	if rh < 0 {
		return nil, fmt.Errorf("dim: no live index root host")
	}
	if m.Rank() == rh {
		return m.resolveAll(id, r, root)
	}
	var reply resolveReply
	if err := m.loc.Call(rh, methodResolveAll, &resolveArgs{Item: id, Region: r, Level: root}, &reply, m.ctlOpt()); err != nil {
		return nil, err
	}
	return reply.Entries, nil
}

func (m *Manager) resolveAll(id ItemID, r dataitem.Region, l int) ([]Located, error) {
	if r.IsEmpty() {
		return nil, nil
	}
	if l == 1 {
		m.mu.Lock()
		st, err := m.itemLocked(id)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		cov := st.frag.Region()
		m.mu.Unlock()
		ri := r.Intersect(cov)
		if ri.IsEmpty() {
			return nil, nil
		}
		return []Located{{Region: ri, Rank: m.Rank()}}, nil
	}
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	var lr, rr dataitem.Region = st.typ.EmptyRegion(), st.typ.EmptyRegion()
	if s := st.index[l]; s != nil {
		lr, rr = s.left, s.right
	}
	m.mu.Unlock()

	var out []Located
	lo := nodeLo(m.Rank(), l)
	half := 1 << uint(l-2)
	if sub := r.Intersect(lr); !sub.IsEmpty() {
		if m.liveHost(lo, l-1) == m.Rank() {
			entries, err := m.resolveAll(id, sub, l-1)
			if err != nil {
				return nil, err
			}
			out = append(out, entries...)
		}
	}
	if rc := m.liveHost(lo+half, l-1); rc >= 0 {
		if sub := r.Intersect(rr); !sub.IsEmpty() {
			if rc == m.Rank() {
				entries, err := m.resolveAll(id, sub, l-1)
				if err != nil {
					return nil, err
				}
				out = append(out, entries...)
			} else {
				var reply resolveReply
				if err := m.loc.Call(rc, methodResolveAll, &resolveArgs{Item: id, Region: sub, Level: l - 1}, &reply, m.ctlOpt()); err != nil {
					return nil, err
				}
				out = append(out, reply.Entries...)
			}
		}
	}
	return out, nil
}

func (m *Manager) handleResolveAll(_ int, args *resolveArgs) (*resolveReply, error) {
	entries, err := m.resolveAll(args.Item, args.Region, args.Level)
	if err != nil {
		return nil, err
	}
	return &resolveReply{Entries: entries}, nil
}

// ---------------------------------------------------------------
// Data movement services
// ---------------------------------------------------------------

// handleFetch exports the requested region of the local fragment,
// optionally removing it (the export side of a migration). The
// operation waits until no conflicting locks are held: any lock
// blocks removal ((migrate) rule), while only write locks block
// copying ((replicate) rule).
func (m *Manager) handleFetch(from int, args *fetchArgs) (*fetchReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		st, err := m.itemLocked(args.Item)
		if err != nil {
			return nil, err
		}
		if !m.lockConflictLocked(st, args.Region, args.Remove) {
			part := args.Region.Intersect(st.frag.Region())
			if part.IsEmpty() {
				return &fetchReply{Empty: true}, nil
			}
			data, err := st.frag.Extract(part)
			if err != nil {
				return nil, err
			}
			var pinToken uint64
			if args.Pin && !args.Remove {
				m.pinSeq++
				pinToken = 1<<63 | uint64(m.Rank())<<48 | m.pinSeq
				st.locks = append(st.locks, lockEntry{token: pinToken, mode: Read, region: part})
				m.pins[pinToken] = from
			}
			if args.Remove {
				rest := st.frag.Region().Difference(part)
				if err := st.frag.Resize(rest); err != nil {
					return nil, err
				}
				total := st.frag.Region()
				st.ver[1]++
				seq := m.stampLocked(st.ver[1])
				// Propagate outside the lock.
				m.mu.Unlock()
				err := m.propagate(args.Item, m.Rank(), 1, total, seq)
				m.mu.Lock()
				if err != nil {
					return nil, err
				}
				m.cond.Broadcast()
			}
			return &fetchReply{Data: data, Part: part, PinToken: pinToken}, nil
		}
		if err := m.waitLocked(deadline); err != nil {
			return nil, fmt.Errorf("dim: fetch of %v blocked on locks: %w", args.Item, err)
		}
	}
}

// handleDrop removes a region from the local fragment without
// returning its data; used to evict replicas. It waits until no lock
// overlaps the region (a locked replica must stay in place —
// satisfied requirements).
func (m *Manager) handleDrop(_ int, args *dropArgs) (*struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		st, err := m.itemLocked(args.Item)
		if err != nil {
			return nil, err
		}
		if !m.lockConflictLocked(st, args.Region, true) {
			rest := st.frag.Region().Difference(args.Region)
			if err := st.frag.Resize(rest); err != nil {
				return nil, err
			}
			total := st.frag.Region()
			st.ver[1]++
			seq := m.stampLocked(st.ver[1])
			m.mu.Unlock()
			err := m.propagate(args.Item, m.Rank(), 1, total, seq)
			m.mu.Lock()
			if err != nil {
				return nil, err
			}
			m.cond.Broadcast()
			return &struct{}{}, nil
		}
		if err := m.waitLocked(deadline); err != nil {
			return nil, fmt.Errorf("dim: drop of %v blocked on locks: %w", args.Item, err)
		}
	}
}

func (m *Manager) handleUnpin(_ int, args *unpinArgs) (*struct{}, error) {
	m.Release(args.Token)
	return &struct{}{}, nil
}

// DropReplica evicts the given region from rank's fragment.
func (m *Manager) DropReplica(rank int, id ItemID, r dataitem.Region) error {
	return m.loc.Call(rank, methodDrop, &dropArgs{Item: id, Region: r}, nil, m.ctlOpt())
}

// handleClaim serializes first-touch allocation at the index root
// host: the granted region is the not-yet-allocated part of the
// request, which the claimant must then allocate ((init) rule — the
// premise "not allocated anywhere" is decided here atomically).
func (m *Manager) handleClaim(_ int, args *claimArgs) (*claimReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(args.Item)
	if err != nil {
		return nil, err
	}
	granted := args.Region.Difference(st.allocated)
	st.allocated = st.allocated.Union(args.Region)
	return &claimReply{Granted: granted}, nil
}

// claim asks the root host which part of r this process may allocate.
func (m *Manager) claim(id ItemID, r dataitem.Region) (dataitem.Region, error) {
	rh := m.liveHost(0, rootLevel(m.size()))
	if rh < 0 {
		return nil, fmt.Errorf("dim: no live index root host")
	}
	var reply claimReply
	if err := m.loc.Call(rh, methodClaim, &claimArgs{Item: id, Region: r}, &reply, m.ctlOpt()); err != nil {
		return nil, err
	}
	return reply.Granted, nil
}

// ---------------------------------------------------------------
// Locks
// ---------------------------------------------------------------

// lockConflictLocked reports whether a lock overlaps region; when
// exclusive is set, read locks conflict too (migration), otherwise
// only write locks (replication).
func (m *Manager) lockConflictLocked(st *itemState, region dataitem.Region, exclusive bool) bool {
	for _, e := range st.locks {
		if e.mode == Write || exclusive {
			if !e.region.Intersect(region).IsEmpty() {
				return true
			}
		}
	}
	return false
}

// waitLocked blocks on the manager condition until the next
// broadcast, failing once deadline passes. A helper timer guarantees
// periodic wakeups so the deadline is observed.
func (m *Manager) waitLocked(deadline time.Time) error {
	if time.Now().After(deadline) {
		return fmt.Errorf("lock wait timed out after %v (application-level deadlock?)", m.LockWaitTimeout)
	}
	timer := time.AfterFunc(50*time.Millisecond, m.cond.Broadcast)
	defer timer.Stop()
	m.cond.Wait()
	return nil
}

// Acquire grants the task identified by token all given requirements,
// following the model's discipline that locks imply presence (the
// (start) rule takes locks only where the data already is):
//
//  1. stage — pull/allocate the required data into the local fragment
//     while holding no locks (so a staging task can never be part of
//     a wait cycle);
//  2. lock — atomically take all locks, provided no conflicting lock
//     exists and the staged coverage is still local (a racing
//     migration sends us back to staging);
//  3. validate — for write requirements, evict any replica that raced
//     in between staging and locking (restoring exclusive writes).
//
// On failure all locks of the token are released.
//
// Scheduling discipline: the task scheduler should avoid placing
// tasks with overlapping write requirements on different processes
// concurrently (Algorithm 2 routes by write requirement); such tasks
// are still executed correctly, but keep stealing the overlap from
// each other while racing for the lock.
func (m *Manager) Acquire(token uint64, reqs []Requirement) error {
	return m.AcquireFor(token, reqs, 0)
}

// AcquireFor is Acquire with an explicit parent span (the acquiring
// task's exec span), emitting a dim.acquire span and feeding the
// acquire-wait histogram with the stage-to-grant latency.
func (m *Manager) AcquireFor(token uint64, reqs []Requirement, parent trace.SpanID) error {
	m.acquires.Inc()
	sp := m.loc.Tracer().Begin("dim.acquire", "", parent)
	sp.SetTask(token)
	start := time.Now()
	err := m.acquire(token, reqs)
	m.acquireWait.Observe(time.Since(start))
	sp.SetErr(err)
	sp.End()
	return err
}

func (m *Manager) acquire(token uint64, reqs []Requirement) error {
	sorted := append([]Requirement(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Item < sorted[j].Item })

	deadline := time.Now().Add(m.LockWaitTimeout)
	for {
		for _, rq := range sorted {
			if err := m.ensureLocal(rq); err != nil {
				return err
			}
		}
		ok, err := m.tryLockAll(token, sorted, deadline)
		if err != nil {
			return err
		}
		if !ok {
			continue // coverage changed under us: re-stage
		}
		if err := m.enforceExclusive(sorted, deadline); err != nil {
			m.Release(token)
			return err
		}
		return nil
	}
}

// tryLockAll takes all locks atomically. It waits (until deadline)
// while conflicting locks exist; once conflict-free it verifies that
// the staged data is still locally present — if a concurrent
// migration stole it, it returns false so the caller re-stages.
func (m *Manager) tryLockAll(token uint64, reqs []Requirement, deadline time.Time) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		conflict := false
		for _, rq := range reqs {
			st, err := m.itemLocked(rq.Item)
			if err != nil {
				return false, err
			}
			for _, e := range st.locks {
				if e.token == token {
					continue
				}
				if (e.mode == Write || rq.Mode == Write) && !e.region.Intersect(rq.Region).IsEmpty() {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			if err := m.waitLocked(deadline); err != nil {
				return false, fmt.Errorf("dim: acquire at rank %d: %w", m.Rank(), err)
			}
			continue
		}
		// Conflict-free: is the staged coverage still here?
		for _, rq := range reqs {
			st, _ := m.itemLocked(rq.Item)
			if !rq.Region.Difference(st.frag.Region()).IsEmpty() {
				return false, nil
			}
		}
		for _, rq := range reqs {
			st, _ := m.itemLocked(rq.Item)
			st.locks = append(st.locks, lockEntry{token: token, mode: rq.Mode, region: rq.Region})
		}
		return true, nil
	}
}

// enforceExclusive restores single-copy ownership of all write
// regions after the locks are taken: replicas that raced in between
// staging and locking are pulled away from their holders. Holders of
// such replicas either finished staging (they run and release — a
// bounded wait) or have not registered them yet (then they are not in
// the index and their own fetch will wait on our write lock), so no
// wait cycle can form.
func (m *Manager) enforceExclusive(reqs []Requirement, deadline time.Time) error {
	for _, rq := range reqs {
		if rq.Mode != Write {
			continue
		}
		for {
			owners, err := m.Owners(rq.Item, rq.Region)
			if err != nil {
				return err
			}
			foreign := owners[:0:0]
			for _, o := range owners {
				if o.Rank != m.Rank() {
					foreign = append(foreign, o)
				}
			}
			if len(foreign) == 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("dim: write region %v of %v keeps being re-replicated", rq.Region, rq.Item)
			}
			for _, o := range foreign {
				var reply fetchReply
				if err := m.loc.Call(o.Rank, methodFetch, &fetchArgs{Item: rq.Item, Region: o.Region, Remove: true}, &reply, m.dataOpt()); err != nil {
					return fmt.Errorf("dim: evict replica of %v from rank %d: %w", rq.Item, o.Rank, err)
				}
				// All copies hold equal values (exclusive writes), so
				// the pulled data simply refreshes our fragment.
				if !reply.Empty {
					if err := m.insertLocal(rq.Item, reply.Part, reply.Data); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Release drops all locks held by token.
func (m *Manager) Release(token uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pins, token)
	for _, st := range m.items {
		kept := st.locks[:0]
		for _, e := range st.locks {
			if e.token != token {
				kept = append(kept, e)
			}
		}
		st.locks = kept
	}
	m.cond.Broadcast()
}

// LockedRegions returns the currently locked regions of an item (for
// tests and monitoring).
func (m *Manager) LockedRegions(id ItemID) (read, write []dataitem.Region, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.itemLocked(id)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range st.locks {
		if e.mode == Write {
			write = append(write, e.region)
		} else {
			read = append(read, e.region)
		}
	}
	return read, write, nil
}

// ensureLocal stages one requirement's data into the local fragment.
func (m *Manager) ensureLocal(rq Requirement) error {
	deadline := time.Now().Add(m.LockWaitTimeout)
	for round := 0; ; round++ {
		cov, err := m.Coverage(rq.Item)
		if err != nil {
			return err
		}
		missing := rq.Region.Difference(cov)

		owners, err := m.Owners(rq.Item, rq.Region)
		if err != nil {
			return err
		}
		foreign := owners[:0:0]
		var located dataitem.Region = missing.Difference(missing) // empty of right type
		for _, o := range owners {
			if o.Rank != m.Rank() {
				foreign = append(foreign, o)
				located = located.Union(o.Region)
			}
		}

		done := false
		switch rq.Mode {
		case Read:
			done = missing.IsEmpty()
		case Write:
			done = missing.IsEmpty() && len(foreign) == 0
		}
		if done {
			return nil
		}

		progressed := false
		// Pull data from foreign holders.
		for _, o := range foreign {
			want := o.Region
			if rq.Mode == Read {
				// Only copy what is still missing locally.
				want = want.Intersect(missing)
				if want.IsEmpty() {
					continue
				}
			}
			var reply fetchReply
			err := m.loc.Call(o.Rank, methodFetch, &fetchArgs{
				Item: rq.Item, Region: want,
				Remove: rq.Mode == Write,
				Pin:    rq.Mode == Read,
			}, &reply, m.dataOpt())
			if err != nil {
				return fmt.Errorf("dim: fetch %v from rank %d: %w", rq.Item, o.Rank, err)
			}
			if reply.Empty {
				continue
			}
			// Grow only by what the source actually exported; a
			// concurrent migration may have shrunk it below `want`.
			insErr := m.insertLocal(rq.Item, reply.Part, reply.Data)
			if reply.PinToken != 0 {
				// The replica is registered (or the insert failed):
				// release the source pin either way.
				if err := m.loc.Call(o.Rank, methodUnpin, &unpinArgs{Token: reply.PinToken}, nil, m.ctlOpt()); err != nil {
					return err
				}
			}
			if insErr != nil {
				return insErr
			}
			progressed = true
		}

		// Allocate never-touched parts (first-touch claim at the root).
		cov, err = m.Coverage(rq.Item)
		if err != nil {
			return err
		}
		unresolved := rq.Region.Difference(cov).Difference(located)
		if !unresolved.IsEmpty() {
			granted, err := m.claim(rq.Item, unresolved)
			if err != nil {
				return err
			}
			if !granted.IsEmpty() {
				if err := m.growLocal(rq.Item, granted); err != nil {
					return err
				}
				progressed = true
			}
		}

		if !progressed {
			// Somebody else is mid-allocation or mid-report; retry
			// until the index reflects it.
			if time.Now().After(deadline) {
				return fmt.Errorf("dim: staging %v %v at rank %d made no progress", rq.Item, rq.Mode, m.Rank())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// insertLocal grows the local fragment by region and inserts the
// transferred data.
func (m *Manager) insertLocal(id ItemID, region dataitem.Region, data []byte) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := st.frag.Resize(st.frag.Region().Union(region)); err != nil {
		m.mu.Unlock()
		return err
	}
	if _, err := st.frag.Insert(data); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return m.reportUp(id)
}

// growLocal zero-allocates region in the local fragment.
func (m *Manager) growLocal(id ItemID, region dataitem.Region) error {
	m.mu.Lock()
	st, err := m.itemLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := st.frag.Resize(st.frag.Region().Union(region)); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return m.reportUp(id)
}
