package simtime

import "testing"

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(1, recurse)
	end := e.Run()
	if depth != 5 || end != 5 {
		t.Fatalf("depth=%d end=%v", depth, end)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 || e.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d", fired, e.Pending())
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	if end := e.Run(); end != 0 || !ran {
		t.Fatalf("end=%v ran=%v", end, ran)
	}
}

func TestResourceCapacityAndQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Use(10, func() { done = append(done, e.Now()) })
	}
	if r.InUse() != 2 || r.Queued() != 2 {
		t.Fatalf("busy=%d queued=%d", r.InUse(), r.Queued())
	}
	e.Run()
	// Two finish at t=10, two queued start at 10 and finish at 20.
	if len(done) != 4 || done[0] != 10 || done[1] != 10 || done[2] != 20 || done[3] != 20 {
		t.Fatalf("completion times = %v", done)
	}
	if r.BusyTime != 40 {
		t.Fatalf("busy time = %v", r.BusyTime)
	}
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewResource(NewEngine(), 0)
}
