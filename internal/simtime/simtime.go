// Package simtime is a deterministic discrete-event simulation engine
// with virtual time. It is the substrate of the cluster performance
// model (package simnet) that replays the paper's 64-node experiments
// on a single machine: compute and communication are charged to a
// virtual clock instead of wall time, so scaling experiments over
// 1–64 nodes × 20 cores run in milliseconds (see DESIGN.md §4,
// substitution for the RRZE Meggie cluster).
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds.
type Time float64

// event is one scheduled callback. seq breaks ties deterministically:
// events at equal times fire in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h eventHeap) Peek() *event    { return h[0] }
func (h eventHeap) String() string  { return fmt.Sprintf("events(%d)", len(h)) }

// Engine is a single-threaded event loop over virtual time. All
// callbacks run on the caller's goroutine inside Run; they may
// schedule further events.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of processed events.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, unprocessed events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after the given virtual delay; negative delays are
// clamped to zero (fire "now", after already-queued events at the
// current instant).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until none remain, returning the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil processes events up to and including time t; later events
// stay queued. The clock ends at t or at the last event, whichever is
// later reached.
func (e *Engine) RunUntil(t Time) Time {
	for len(e.events) > 0 && e.events.Peek().at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.fired++
	ev.fn()
}

// Resource is a FCFS server with fixed capacity (e.g. the cores of a
// node, or a NIC serializing messages): holders occupy one unit for a
// virtual duration, excess requests queue.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	queue    []func()
	// BusyTime accumulates occupied unit-seconds, for utilization
	// statistics.
	BusyTime Time
}

// NewResource creates a resource with the given capacity.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("simtime: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Use occupies one unit for the duration, then calls done (which may
// be nil). If the resource is saturated the request queues FCFS.
func (r *Resource) Use(duration Time, done func()) {
	run := func() {
		r.busy++
		r.BusyTime += duration
		r.eng.Schedule(duration, func() {
			r.busy--
			if len(r.queue) > 0 {
				next := r.queue[0]
				r.queue = r.queue[1:]
				next()
			}
			if done != nil {
				done()
			}
		})
	}
	if r.busy < r.capacity {
		run()
	} else {
		r.queue = append(r.queue, run)
	}
}

// InUse returns the currently occupied units.
func (r *Resource) InUse() int { return r.busy }

// Queued returns the queued request count.
func (r *Resource) Queued() int { return len(r.queue) }
