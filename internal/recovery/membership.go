// Elastic membership (DESIGN.md §6g): the graceful twin of crash
// recovery. The fabric is provisioned at full capacity; ranks marked
// latent at construction (core.Config.Latent) idle outside the
// membership until Join admits them, and Drain retires a member after
// migrating every task and fragment it holds — the dynamic locality
// set of the ParalleX/HPX lineage on top of the fixed-size transport.
//
// Join is a three-step handshake. First the joiner is fenced into the
// current incarnation epoch over a membership.update RPC — the reply
// is stamped with the adopted epoch, proving the fence took before
// anything else observes the rank. Then every locality admits the
// joiner (installing the same epoch as the joiner's inbound fence, so
// stale pre-join frames are rejected) and the Fig. 5 index tree is
// re-shaped over the grown membership: the liveHost insertion dual of
// the crash-time hole routing, realized as the same retract →
// republish → re-derive-claims sequence recovery already uses. Last,
// the joiner warms up by pulling a fair share of every grid item
// through the balancer; the locate-cache revocations issued by the
// migrating fetches keep the old owners' caches coherent.
//
// Drain reverses the sequence: placement toward the rank pauses (the
// suspect flag every scheduler and the DIM already honor, plus a
// local draining flag so the rank stops keeping work), the queued
// backlog is re-assigned over the remaining members, the rank
// quiesces, migrates its fragments out via ordinary write
// acquisitions, and only then — state fully evacuated — is marked
// departed under a fresh fence epoch, the drained rank itself first
// so its goodbye ack is not fenced. The failure detector never fires:
// a departed rank is not probed, and its own detector retires.
package recovery

import (
	"fmt"
	"sync/atomic"
	"time"

	"allscale/internal/balance"
	"allscale/internal/dim"
	"allscale/internal/runtime"
	"allscale/internal/wire"
)

// Registry names of the elastic-membership metrics (rank-0 registry,
// surfaced via monitor.Sample).
const (
	MetricJoins  = "membership.joins"
	MetricDrains = "membership.drains"
	// MetricWarmupBytes sums the bytes a joiner received during its
	// post-join warm-up migration; MetricWarmupUs the wall time of the
	// whole join sequence.
	MetricWarmupBytes = "membership.warmup_bytes"
	MetricWarmupUs    = "membership.warmup_us"
)

const methodMembership = "membership.update"

// drainQuiesce bounds how long a drain waits for the rank's running
// tasks and outstanding calls to finish before giving up.
const drainQuiesce = 30 * time.Second

// membershipUpdate is the wire form of a membership change: the rank
// joining (or, with Depart, leaving) the computation at the given
// fence epoch.
type membershipUpdate struct {
	Rank   int
	Epoch  uint64
	Depart bool
}

// migrateToken allocates DIM acquisition tokens for membership
// migrations; the offset keeps them clear of task and balancer tokens.
var migrateToken atomic.Uint64

func nextToken() uint64 {
	return 0xE1A5_7100_0000_0000 + migrateToken.Add(1)
}

// membershipHandler applies a membership.update to the locality it is
// registered on. The handler runs before the RPC response is stamped,
// so a joiner's reply already carries the adopted epoch.
func membershipHandler(loc *runtime.Locality) runtime.Method {
	return func(_ int, body []byte) ([]byte, error) {
		var u membershipUpdate
		if err := wire.Decode(body, &u); err != nil {
			return nil, err
		}
		if u.Depart {
			loc.MarkDeparted(u.Rank, u.Epoch)
		} else {
			loc.MarkJoined(u.Rank, u.Epoch)
		}
		return nil, nil
	}
}

// Join admits a latent rank into the live membership: handshake,
// admission on every locality, index-tree reshape, warm-up migration.
// It is idempotent (joining a member is a no-op) and serializes with
// recoveries and other membership changes. A dead or departed slot
// cannot be (re)joined.
func (c *Coordinator) Join(rank int) error {
	if rank < 0 || rank >= c.sys.Size() {
		return fmt.Errorf("recovery: join of rank %d out of range", rank)
	}
	joiner := c.sys.Locality(rank)
	if joiner.IsDead(rank) || joiner.IsDeparted(rank) {
		return fmt.Errorf("recovery: rank %d left the membership for good", rank)
	}
	c.recMu.Lock()
	defer c.recMu.Unlock()
	if joiner.IsMember(rank) {
		return nil
	}
	members := c.liveRanks()
	if len(members) == 0 {
		return fmt.Errorf("recovery: no live member to join through")
	}
	anchor := c.sys.Locality(members[0])
	start := time.Now()
	rx0 := joiner.Stats().BytesReceived
	sp := c.tracer().Begin("recovery.join", fmt.Sprintf("rank %d", rank), 0)
	defer sp.End()

	c.mu.Lock()
	c.epoch++
	fence := c.epoch
	c.mu.Unlock()

	// 1. Handshake: fence the joiner into the current incarnation
	// epoch. The joiner adopts the epoch inside the handler, so its
	// reply — and every frame it sends from here on — is stamped with
	// it; anything it sent before the handshake stays below the fence
	// the members install in step 2.
	if err := anchor.Call(rank, methodMembership,
		&membershipUpdate{Rank: rank, Epoch: fence}, nil,
		runtime.WithSpec(anchor.ControlSpec())); err != nil {
		sp.SetErr(err)
		return fmt.Errorf("recovery: join handshake with rank %d: %w", rank, err)
	}
	// 2. Admission: every other locality (latent ranks included, so
	// later joins inherit the view) accepts the joiner as a member.
	for r := 0; r < c.sys.Size(); r++ {
		if r != rank {
			c.sys.Locality(r).MarkJoined(rank, fence)
		}
	}
	// 3. Geometry reshape: re-shape the Fig. 5 index tree over the
	// grown membership — the insertion dual of the crash-time hole
	// routing, via the same retract → republish → re-derive sequence.
	live := c.liveRanks()
	if err := c.retractAll(live); err != nil {
		sp.SetErr(err)
		return err
	}
	if err := c.republishAll(live); err != nil {
		sp.SetErr(err)
		return err
	}
	if err := c.syncAlloc(live); err != nil {
		sp.SetErr(err)
		return err
	}
	// 4. Warm-up: pull a fair share of every grid item onto the joiner
	// (it is the poorest rank — it owns nothing). The migrating fetches
	// revoke stale locate-cache entries on the old owners as they go.
	// Non-grid items warm lazily through demand fetches instead.
	for _, id := range c.sys.Manager(members[0]).Items() {
		if _, err := balance.RebalanceGrid(c.sys, id, balance.Options{Token: nextToken()}); err != nil {
			continue
		}
	}

	c.warmupBytes.Add(joiner.Stats().BytesReceived - rx0)
	c.warmupUs.Add(uint64(time.Since(start).Microseconds()))
	c.joins.Inc()
	c.report.Joined = append(c.report.Joined, rank)
	return nil
}

// Drain gracefully retires a member rank: placement toward it stops,
// its queued tasks are re-assigned over the remaining members, it
// quiesces, migrates its fragments out, and leaves under a fresh
// fence epoch — zero tasks lost, zero duplicated, and no failure
// detector involvement. Draining the last member is refused; draining
// a latent or already-departed rank is a no-op.
func (c *Coordinator) Drain(rank int) error {
	if rank < 0 || rank >= c.sys.Size() {
		return fmt.Errorf("recovery: drain of rank %d out of range", rank)
	}
	loc := c.sys.Locality(rank)
	if loc.IsDead(rank) {
		return fmt.Errorf("recovery: rank %d is dead, nothing to drain", rank)
	}
	c.recMu.Lock()
	defer c.recMu.Unlock()
	if !loc.IsMember(rank) {
		return nil
	}
	members := c.liveRanks()
	if len(members) < 2 {
		return fmt.Errorf("recovery: cannot drain rank %d: it is the last member", rank)
	}
	others := members[:0:0]
	for _, r := range members {
		if r != rank {
			others = append(others, r)
		}
	}
	sp := c.tracer().Begin("recovery.drain", fmt.Sprintf("rank %d", rank), 0)
	defer sp.End()

	// 1. Stop admitting placements: the rank flags itself draining (its
	// own assigns go remote, steals stop) and every peer flags it
	// suspect — the placement pause schedulers and the DIM already
	// honor. It stays a member: its fragments must remain resolvable
	// until they have migrated out.
	sc := c.sys.Scheduler(rank)
	sc.SetDraining(true)
	c.setSuspect(rank, true)
	abort := func() {
		sc.SetDraining(false)
		c.setSuspect(rank, false)
	}
	// Re-assign the queued backlog over the remaining members (the
	// shipper dedups, so a re-sent batch cannot double-execute).
	sc.RedistributeQueued()

	// 2. Quiesce: wait out the running tasks and outstanding calls.
	deadline := time.Now().Add(drainQuiesce)
	for sc.Load() != 0 || loc.PendingCalls() != 0 {
		if time.Now().After(deadline) {
			abort()
			err := fmt.Errorf("recovery: drain of rank %d: no quiescence (load %d, %d calls pending)",
				rank, sc.Load(), loc.PendingCalls())
			sp.SetErr(err)
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}

	// 3. Migrate every owned fragment onto the remaining members via
	// ordinary write acquisitions: the fetch-with-remove path moves the
	// bytes, revokes stale locate-cache entries and shrinks the rank's
	// published coverage as it goes.
	mgr := c.sys.Manager(rank)
	next := 0
	for _, id := range mgr.Items() {
		cov, err := mgr.Coverage(id)
		if err != nil || cov == nil || cov.Size() == 0 {
			continue
		}
		dst := c.sys.Manager(others[next%len(others)])
		next++
		tok := nextToken()
		if err := dst.Acquire(tok, []dim.Requirement{{Item: id, Region: cov, Mode: dim.Write}}); err != nil {
			abort()
			err = fmt.Errorf("recovery: migrate item %v off rank %d: %w", id, rank, err)
			sp.SetErr(err)
			return err
		}
		dst.Release(tok)
	}
	// 4. The rank's replica pins will never be confirmed once it is
	// gone: release them on every remaining member.
	for _, r := range others {
		c.sys.Manager(r).ReleasePinsOf(rank)
	}

	// 5. Retire under a fresh fence epoch — the drained rank itself
	// first, over the wire, so its goodbye ack is answered before any
	// member fences it; straggler frames from its old incarnation are
	// rejected from here on.
	c.mu.Lock()
	c.epoch++
	fence := c.epoch
	c.mu.Unlock()
	anchor := c.sys.Locality(others[0])
	if err := anchor.Call(rank, methodMembership,
		&membershipUpdate{Rank: rank, Epoch: fence, Depart: true}, nil,
		runtime.WithSpec(anchor.ControlSpec())); err != nil {
		// The goodbye was lost on the wire; retire the rank directly —
		// its coverage is already evacuated, nothing depends on the ack.
		loc.MarkDeparted(rank, fence)
	}
	for r := 0; r < c.sys.Size(); r++ {
		if r != rank {
			c.sys.Locality(r).MarkDeparted(rank, fence)
		}
	}

	// 6. Re-shape the index tree over the shrunk membership: inner
	// nodes the drained rank hosted re-home onto the survivors.
	if err := c.retractAll(others); err != nil {
		sp.SetErr(err)
		return err
	}
	if err := c.republishAll(others); err != nil {
		sp.SetErr(err)
		return err
	}
	if err := c.syncAlloc(others); err != nil {
		sp.SetErr(err)
		return err
	}

	sc.StopQueue()
	c.clearSuspicion(rank)
	c.drains.Inc()
	c.report.Drained = append(c.report.Drained, rank)
	return nil
}
