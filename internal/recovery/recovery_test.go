package recovery

import (
	"sync"
	"testing"
	"time"

	"allscale/internal/apps/stencil"
	"allscale/internal/core"
	"allscale/internal/dim"
	"allscale/internal/model"
	"allscale/internal/resilience"
	"allscale/internal/runtime"
	"allscale/internal/sched"
	"allscale/internal/transport"
)

// newTCPEndpoints builds n loopback TCP endpoints with tight failure
// budgets, for systems whose fabric a test will sever.
func newTCPEndpoints(t *testing.T, n int) ([]transport.Endpoint, []*transport.TCPEndpoint) {
	t.Helper()
	cfg := transport.TCPConfig{
		WriteTimeout: 500 * time.Millisecond,
		DialTimeout:  200 * time.Millisecond,
		RetryBudget:  300 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	tcps := make([]*transport.TCPEndpoint, n)
	for i := range tcps {
		ep, err := transport.NewTCPEndpointConfig(i, addrs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = ep
		t.Cleanup(func() { ep.Close() })
	}
	actual := make([]string, n)
	for i, ep := range tcps {
		actual[i] = ep.Addr()
	}
	eps := make([]transport.Endpoint, n)
	for i, ep := range tcps {
		ep.SetAddrs(actual)
		eps[i] = ep
	}
	return eps, tcps
}

// TestCrashRecoveryStencilTCP is the headline end-to-end scenario: a
// 4-locality stencil over real TCP, checkpointed halfway; one locality
// is killed during the second half. The failure detector must notice,
// the survivors roll back and re-home the dead rank's fragments, the
// second half re-runs on three localities, and the result is identical
// to an uninterrupted run. The runtime's crash report is then checked
// against the model's (crash) transition oracle.
func TestCrashRecoveryStencilTCP(t *testing.T) {
	const n, victim = 4, 2
	p := stencil.Params{N: 24, Steps: 6, C: 0.1, MinGrain: 32}
	want := stencil.RunSequential(p)

	eps, _ := newTCPEndpoints(t, n)
	sys := core.NewSystem(core.Config{
		Endpoints: eps,
		Recovery:  core.RecoveryConfig{Heartbeat: 25 * time.Millisecond, Timeout: 150 * time.Millisecond},
	})
	app := stencil.NewAllScale(sys, p)
	sys.Start()
	defer sys.Close()
	rec := Attach(sys, Options{})

	if err := app.CreateItems(); err != nil {
		t.Fatal(err)
	}
	if err := app.Init(); err != nil {
		t.Fatal(err)
	}
	if err := app.RunSteps(0, 3); err != nil {
		t.Fatal(err)
	}
	cp, err := resilience.Capture(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetCheckpoint(cp)
	victimShare := 0
	for _, r := range cp.Records {
		if r.Rank == victim {
			victimShare++
		}
	}
	if victimShare == 0 {
		t.Fatalf("victim rank holds no checkpointed fragments; nothing to re-home")
	}

	// Second half, with the victim crashing once the phase reaches it.
	base := sys.Metrics(victim).Counter(sched.MetricExecuted).Value()
	phaseErr := make(chan error, 1)
	go func() { phaseErr <- app.RunSteps(3, 6) }()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if sys.Metrics(victim).Counter(sched.MetricExecuted).Value() > base {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sys.Kill(victim)
	select {
	case err := <-phaseErr:
		t.Logf("phase 2 unwound after crash with: %v", err)
	case <-time.After(20 * time.Second):
		t.Fatalf("phase 2 did not unwind after the crash; dead=%v report=%+v", rec.DeadRanks(), rec.Report())
	}

	if !rec.WaitDeaths(1, 10*time.Second) {
		t.Fatalf("victim not detected; dead = %v", rec.DeadRanks())
	}
	if got := rec.DeadRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("dead ranks = %v, want [%d]", got, victim)
	}
	if err := rec.Restore(); err != nil {
		t.Fatal(err)
	}
	verifyLiveIndex(t, sys, victim)

	// Re-run the lost phase on the survivors.
	if err := app.RunSteps(3, 6); err != nil {
		t.Fatalf("re-run from checkpoint: %v", err)
	}
	verifyLiveIndex(t, sys, victim)
	got, err := app.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %v after crash recovery, want %v", i, got[i], want[i])
		}
	}

	rep := rec.Report()
	if rep.RehomedRecords != victimShare {
		t.Fatalf("re-homed %d records, want the victim's %d", rep.RehomedRecords, victimShare)
	}
	if v := sys.Metrics(0).Counter(MetricDeaths).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricDeaths, v)
	}
	if v := sys.Metrics(0).Counter(MetricRehomed).Value(); v != uint64(victimShare) {
		t.Fatalf("%s = %d, want %d", MetricRehomed, v, victimShare)
	}

	checkCrashOracle(t, cp, rep, n, victim)
}

// verifyLiveIndex checks the distributed index of every item with the
// dead rank's slot nil — the generalized invariant: live coverage
// aggregates cleanly up the live index geometry.
func verifyLiveIndex(t *testing.T, sys *core.System, dead int) {
	t.Helper()
	mgrs := make([]*dim.Manager, sys.Size())
	var live int
	for r := 0; r < sys.Size(); r++ {
		if r != dead {
			mgrs[r] = sys.Manager(r)
			live = r
		}
	}
	for _, item := range sys.Manager(live).Items() {
		if err := dim.VerifyIndex(mgrs, item); err != nil {
			t.Fatalf("index after recovery: %v", err)
		}
	}
}

// checkCrashOracle replays the observed crash against the model's
// (crash) transition (model/dynamic.go): each checkpoint record is one
// un-replicated data element on its rank's address space, each requeued
// task one variant running on the victim's compute unit. The model must
// report exactly the victim's elements lost — the set Restore re-homed
// — and every lost task re-enqueued, and must preserve survivor data.
func checkCrashOracle(t *testing.T, cp *resilience.Checkpoint, rep Report, n, victim int) {
	t.Helper()
	prog := &model.Program{
		Entry:    0,
		Tasks:    map[model.TaskID]*model.Task{},
		Variants: map[model.VariantID]*model.Variant{},
	}
	st := &model.State{
		Prog: prog,
		Arch: model.NewCluster(n, 1),
		Q:    map[model.TaskID]bool{},
		R:    map[model.VariantID]model.RunEntry{},
		B:    map[model.VariantID]model.BlockEntry{},
		D:    map[model.MemSpace]map[model.ItemID]map[model.Elem]bool{},
		Lr:   map[model.LockKey]bool{},
		Lw:   map[model.LockKey]bool{},
	}
	for i, rec := range cp.Records {
		m := model.MemSpace(rec.Rank)
		if st.D[m] == nil {
			st.D[m] = map[model.ItemID]map[model.Elem]bool{0: {}}
		}
		st.D[m][0][model.Elem(i)] = true
	}
	for i := 0; i < rep.RequeuedTasks; i++ {
		tid, vid := model.TaskID(i+1), model.VariantID(i+1)
		prog.Tasks[tid] = &model.Task{ID: tid, Variants: []model.VariantID{vid}}
		prog.Variants[vid] = &model.Variant{ID: vid, Task: tid}
		st.R[vid] = model.RunEntry{CU: model.ComputeUnit(victim)}
	}

	mrep, err := st.CrashNode(model.MemSpace(victim))
	if err != nil {
		t.Fatalf("model rejects the crash transition: %v", err)
	}
	if len(mrep.LostElems) != rep.RehomedRecords {
		t.Fatalf("model lost %d elements, runtime re-homed %d", len(mrep.LostElems), rep.RehomedRecords)
	}
	if len(mrep.RequeuedTasks) != rep.RequeuedTasks {
		t.Fatalf("model requeued %d tasks, runtime %d", len(mrep.RequeuedTasks), rep.RequeuedTasks)
	}
	for _, tid := range mrep.RequeuedTasks {
		if !st.Q[tid] {
			t.Fatalf("task %d not back in Q after crash", tid)
		}
	}
	for i, rec := range cp.Records {
		if rec.Rank != victim && !st.Present(model.MemSpace(rec.Rank), 0, model.Elem(i)) {
			t.Fatalf("survivor element %d on rank %d lost by the model crash", i, rec.Rank)
		}
	}
}

// TestRespawnReexecutesLostTasks exercises respawn mode (no
// checkpoint): pure-compute tasks spread round-robin over four
// localities; one locality is crashed while executing. Every future
// must still complete with the correct value — the lost tasks are
// transparently re-executed on survivors.
func TestRespawnReexecutesLostTasks(t *testing.T) {
	const n, victim, tasks = 4, 2, 16
	sys := core.NewSystem(core.Config{
		Localities: n,
		Policy:     &sched.RoundRobinPolicy{},
		Recovery:   core.RecoveryConfig{Heartbeat: 20 * time.Millisecond, Timeout: 120 * time.Millisecond},
	})
	started := make(chan int, 4*tasks)
	sys.RegisterKind(func(rank int) *sched.Kind {
		return &sched.Kind{
			Name: "crash.work",
			Process: func(ctx *sched.Ctx) (any, error) {
				started <- rank
				time.Sleep(80 * time.Millisecond)
				var x int
				ctx.Args(&x)
				return x * 3, nil
			},
		}
	})
	sys.Start()
	defer sys.Close()
	rec := Attach(sys, Options{})

	futs := make([]*runtime.Future, tasks)
	for i := range futs {
		f, err := sys.Spawn("crash.work", i)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	// Crash the victim while it is mid-task.
	for onVictim := false; !onVictim; {
		select {
		case r := <-started:
			onVictim = r == victim
		case <-time.After(5 * time.Second):
			t.Fatal("no task reached the victim rank")
		}
	}
	sys.Kill(victim)

	for i, f := range futs {
		done := make(chan error, 1)
		var out int
		go func() { done <- f.WaitInto(&out) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("task %d failed despite respawn: %v", i, err)
			}
			if out != i*3 {
				t.Fatalf("task %d = %d, want %d", i, out, i*3)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("task %d hung after the crash", i)
		}
	}
	rep := rec.Report()
	if len(rep.Dead) != 1 || rep.Dead[0] != victim {
		t.Fatalf("dead = %v, want [%d]", rep.Dead, victim)
	}
	if rep.RespawnedTasks == 0 {
		t.Fatal("no tasks respawned although the victim was mid-task")
	}
	if v := sys.Metrics(0).Counter(MetricRespawned).Value(); v != uint64(rep.RespawnedTasks) {
		t.Fatalf("%s = %d, report says %d", MetricRespawned, v, rep.RespawnedTasks)
	}
}

// TestCaptureRemoteFailsCleanOnSeveredLink severs a locality's TCP
// endpoint underneath a remote capture: the capture must fail with a
// clean error and return no partial checkpoint.
func TestCaptureRemoteFailsCleanOnSeveredLink(t *testing.T) {
	const n, victim = 3, 2
	eps, tcps := newTCPEndpoints(t, n)
	sys := core.NewSystem(core.Config{Endpoints: eps})
	p := stencil.Params{N: 16, Steps: 2, C: 0.1, MinGrain: 32}
	app := stencil.NewAllScale(sys, p)
	resilience.RegisterExportService(sys)
	sys.Start()
	defer sys.Close()
	if err := app.CreateItems(); err != nil {
		t.Fatal(err)
	}
	if err := app.Init(); err != nil {
		t.Fatal(err)
	}

	// Healthy fabric: the remote capture matches the local one.
	remote, err := resilience.CaptureRemote(sys, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := resilience.Capture(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Size() != local.Size() || len(remote.Records) != len(local.Records) {
		t.Fatalf("remote capture diverges: %d/%d records, %d/%d bytes",
			len(remote.Records), len(local.Records), remote.Size(), local.Size())
	}

	tcps[victim].Close()
	cp, err := resilience.CaptureRemote(sys, 0, nil)
	if err == nil {
		t.Fatal("capture over a severed fabric must fail")
	}
	if cp != nil {
		t.Fatalf("partial checkpoint returned alongside error: %d records", len(cp.Records))
	}
}

// TestHeartbeatRPCConcurrency floods a two-locality TCP fabric with
// application RPCs while the failure detectors probe at 10ms — run
// under -race it proves heartbeat and RPC paths share the transport
// safely, and no healthy rank is ever declared dead.
func TestHeartbeatRPCConcurrency(t *testing.T) {
	eps, _ := newTCPEndpoints(t, 2)
	sys := core.NewSystem(core.Config{
		Endpoints: eps,
		Recovery:  core.RecoveryConfig{Heartbeat: 10 * time.Millisecond, Timeout: 2 * time.Second},
	})
	for r := 0; r < 2; r++ {
		sys.Locality(r).Handle("echo", func(from int, body []byte) ([]byte, error) {
			return body, nil
		})
	}
	sys.Start()
	defer sys.Close()
	rec := Attach(sys, Options{})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 2; r++ {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				loc := sys.Locality(rank)
				for i := 0; i < 50; i++ {
					var out string
					if err := loc.Call(1-rank, "echo", "ping", &out); err != nil {
						errs <- err
						return
					}
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("RPC failed under heartbeat load: %v", err)
	}
	if dead := rec.DeadRanks(); len(dead) != 0 {
		t.Fatalf("healthy ranks declared dead: %v", dead)
	}
}
