// Package recovery implements the crash-recovery subsystem of the
// runtime prototype (DESIGN.md §6c): heartbeat-based failure
// detection across both fabrics, exclusion of dead ranks from
// scheduling and the distributed index, re-homing of a dead rank's
// checkpointed data item fragments onto survivors, and re-execution of
// the tasks lost with the rank.
//
// The paper's model makes this recoverability argument explicit: a
// crash loses exactly the fragments and running tasks of one locality
// (the (crash) transition of the dynamic semantics); everything else
// — the index, the allocation claims, the spawn tree — can be rebuilt
// from the survivors. Because the runtime owns data distribution, the
// recovery is a system service: no application code participates.
//
// Two recovery modes exist, chosen by whether a checkpoint was
// registered with SetCheckpoint:
//
//   - Without a checkpoint ("respawn mode"), lost tasks are re-spawned
//     transparently onto live ranks. This is sound only for tasks that
//     do not mutate data items — the dead rank's fragment contents are
//     gone, and a respawned writer would compute on holes.
//
//   - With a checkpoint ("rollback mode"), the futures of lost tasks
//     are failed with runtime.ErrPeerFailed so the task wave unwinds;
//     the driver then calls Restore, which rolls every live rank back
//     to the checkpoint, re-homes the dead rank's shares onto
//     survivors, and lets the driver re-run from the checkpointed
//     phase.
package recovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"allscale/internal/core"
	"allscale/internal/dim"
	"allscale/internal/metrics"
	"allscale/internal/resilience"
	"allscale/internal/runtime"
	"allscale/internal/sched"
	"allscale/internal/trace"
)

// Options tunes failure detection.
type Options struct {
	// Heartbeat is the probe interval of the per-rank detectors.
	// Default 250ms.
	Heartbeat time.Duration
	// Timeout is the silence span after which a peer is suspected and
	// actively confirmed. Default 4× Heartbeat.
	Timeout time.Duration
	// PingRetries is how many times the confirmation ping is resent
	// (each attempt bounded by Timeout) before the peer is declared
	// dead. Suspicion pauses placement immediately; death needs the
	// full retry exhaustion, so a lossy-but-alive peer survives a
	// dropped probe. Default 3.
	PingRetries int
}

// Registry names under which the coordinator publishes its metrics
// (into the rank-0 registry of the system).
const (
	MetricDeaths    = "recovery.deaths"
	MetricRehomed   = "recovery.rehomed_records"
	MetricRespawned = "recovery.respawned_tasks"
	MetricRequeued  = "recovery.requeued_tasks"
	MetricRecover   = "recovery.recover.us"
	// MetricSuspects counts suspicion episodes (a peer flagged after
	// heartbeat silence); MetricFalseAlarms counts the episodes that
	// ended with a successful confirmation ping instead of a death.
	MetricSuspects    = "recovery.suspects"
	MetricFalseAlarms = "recovery.false_alarms"
)

const methodPing = "recovery.ping"

// Report summarizes what the coordinator did so far.
type Report struct {
	// Dead lists the ranks declared dead, in rank order.
	Dead []int
	// RequeuedTasks counts lost tasks whose futures were failed for a
	// rollback (rollback mode).
	RequeuedTasks int
	// RehomedRecords counts checkpoint records re-homed from dead
	// ranks onto survivors by Restore.
	RehomedRecords int
	// RespawnedTasks counts lost tasks re-spawned onto live ranks
	// (respawn mode).
	RespawnedTasks int
	// Joined/Drained list the ranks admitted into and gracefully
	// retired from the membership, in event order.
	Joined  []int
	Drained []int
}

// Coordinator is the per-system recovery coordinator: it runs one
// failure detector per locality, arbitrates death declarations, and
// drives the recovery sequence. It implements core.RecoveryService.
type Coordinator struct {
	sys  *core.System
	opts Options

	mu         sync.Mutex
	dead       map[int]bool
	confirming map[int]bool
	// suspectedAt records when each rank first came under suspicion;
	// the order decides report authority in distrusted.
	suspectedAt map[int]time.Time
	epoch       uint64
	cp          *resilience.Checkpoint
	report      Report

	// recMu serializes whole recovery sequences: two deaths reported
	// concurrently recover one after the other.
	recMu sync.Mutex

	deaths, rehomed, respawned, requeued *metrics.Counter
	suspects, falseAlarms                *metrics.Counter
	joins, drains                        *metrics.Counter
	warmupBytes, warmupUs                *metrics.Counter
	recoverHist                          *metrics.Histogram

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Attach creates the coordinator of a system, registers the liveness
// confirmation service on every locality, subscribes to transport
// failure notifications, and starts the detectors. Zero option fields
// fall back to the system's core.Config.Recovery values, then to the
// defaults. Must be called after the system's services are registered
// (it installs an RPC handler on every locality).
func Attach(sys *core.System, opts Options) *Coordinator {
	cfg := sys.RecoveryConfig()
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = cfg.Heartbeat
	}
	if opts.Timeout <= 0 {
		opts.Timeout = cfg.Timeout
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 250 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 4 * opts.Heartbeat
	}
	if opts.PingRetries <= 0 {
		opts.PingRetries = 3
	}
	reg := sys.Metrics(0)
	c := &Coordinator{
		sys:         sys,
		opts:        opts,
		dead:        make(map[int]bool),
		confirming:  make(map[int]bool),
		suspectedAt: make(map[int]time.Time),
		deaths:      reg.Counter(MetricDeaths),
		rehomed:     reg.Counter(MetricRehomed),
		respawned:   reg.Counter(MetricRespawned),
		requeued:    reg.Counter(MetricRequeued),
		suspects:    reg.Counter(MetricSuspects),
		falseAlarms: reg.Counter(MetricFalseAlarms),
		joins:       reg.Counter(MetricJoins),
		drains:      reg.Counter(MetricDrains),
		warmupBytes: reg.Counter(MetricWarmupBytes),
		warmupUs:    reg.Counter(MetricWarmupUs),
		recoverHist: reg.Histogram(MetricRecover),
		stop:        make(chan struct{}),
	}
	for r := 0; r < sys.Size(); r++ {
		r := r
		loc := sys.Locality(r)
		loc.Handle(methodPing, func(int, []byte) ([]byte, error) { return nil, nil })
		loc.Handle(methodMembership, membershipHandler(loc))
		// Cross-check with the transport's link-death notifications: a
		// reported peer failure triggers an immediate active
		// confirmation instead of waiting out the heartbeat timeout.
		loc.OnPeerFailure(func(peer int, _ error) { c.confirm(r, peer) })
	}
	sys.SetRecovery(c)
	c.wg.Add(sys.Size())
	for r := 0; r < sys.Size(); r++ {
		go c.detect(r)
	}
	return c
}

// Stop terminates the detectors; it is idempotent. In-flight
// confirmations finish on their own.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// SetCheckpoint registers the rollback target and switches the
// coordinator into rollback mode: from now on, lost tasks fail their
// futures instead of being respawned, and Restore rolls the system
// back to cp.
func (c *Coordinator) SetCheckpoint(cp *resilience.Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cp = cp
}

// DeadRanks returns the ranks declared dead so far, in rank order.
func (c *Coordinator) DeadRanks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.dead))
	for r := range c.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// WaitDeaths blocks until at least n ranks were declared dead (and
// their recovery sequences completed), or the timeout passed.
func (c *Coordinator) WaitDeaths(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.recMu.Lock()
		done := len(c.report.Dead) >= n
		c.recMu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Report returns a snapshot of the coordinator's activity.
func (c *Coordinator) Report() Report {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	rep := c.report
	rep.Dead = append([]int(nil), rep.Dead...)
	rep.Joined = append([]int(nil), rep.Joined...)
	rep.Drained = append([]int(nil), rep.Drained...)
	return rep
}

func (c *Coordinator) tracer() *trace.Tracer { return c.sys.Tracer(0) }

// liveRanks returns the member ranks not declared dead, ascending.
// Latent and departed ranks are excluded: recovery sequences (and the
// index geometry they rebuild) range over the active membership only.
func (c *Coordinator) liveRanks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for r := 0; r < c.sys.Size(); r++ {
		if !c.dead[r] && c.sys.Locality(r).IsMember(r) {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------

// detect is the per-locality failure detector: every heartbeat
// interval it probes all peers and checks their last-heard timestamps;
// a silent peer is handed to confirm. The detector of a killed
// locality exits on its own.
func (c *Coordinator) detect(rank int) {
	defer c.wg.Done()
	loc := c.sys.Locality(rank)
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	// Grace: peers are judged from detector start, not system start —
	// a quiet but healthy fabric must not trip the timeout on round 1.
	base := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		if loc.Closed() {
			return
		}
		if loc.IsDeparted(rank) {
			return // gracefully drained: the detector retires with the rank
		}
		if !loc.IsMember(rank) {
			continue // latent: wait out the tick until a join admits us
		}
		for p := 0; p < c.sys.Size(); p++ {
			if p == rank || loc.IsDead(p) || !loc.IsMember(p) {
				continue
			}
			loc.Heartbeat(p)
			last := loc.LastHeard(p)
			if last.Before(base) {
				last = base
			}
			if time.Since(last) > c.opts.Timeout {
				c.confirm(rank, p)
			}
		}
	}
}

// confirm escalates a suspected peer: the peer is flagged suspect on
// every live locality (placement and stealing avoid it immediately),
// then a confirmation ping with a full retry budget decides between
// false alarm (suspicion cleared) and death. Splitting suspicion from
// death keeps a lossy-but-alive peer schedulable again after one
// successful probe instead of fencing it forever. At most one
// confirmation per peer runs at a time.
func (c *Coordinator) confirm(observer, peer int) {
	c.mu.Lock()
	if c.dead[peer] || c.confirming[peer] {
		c.mu.Unlock()
		return
	}
	c.confirming[peer] = true
	if _, ok := c.suspectedAt[peer]; !ok {
		c.suspectedAt[peer] = time.Now()
	}
	c.mu.Unlock()
	go func() {
		sp := c.tracer().Begin("recovery.detect", fmt.Sprintf("confirm rank %d", peer), 0)
		c.setSuspect(peer, true)
		c.suspects.Inc()
		err := c.ping(observer, peer)
		sp.SetErr(err)
		sp.End()
		c.mu.Lock()
		delete(c.confirming, peer)
		c.mu.Unlock()
		if err == nil {
			// False alarm: the peer answered — lift the placement pause.
			c.clearSuspicion(peer)
			c.falseAlarms.Inc()
			return
		}
		select {
		case <-c.stop:
			c.clearSuspicion(peer)
			return // shutting down: closing localities are not deaths
		default:
		}
		if c.distrusted(observer, peer) {
			c.clearSuspicion(peer)
			return
		}
		c.ReportDeath(peer)
	}()
}

// distrusted reports whether observer's death report for peer must be
// discarded. A dead observer has none: once survivors fence a
// partitioned rank they stop heartbeating it, so its own detector soon
// sees every survivor as silent and — with its pings still blocked —
// would declare the whole system dead. Between live ranks, an observer
// that came under suspicion no later than peer is the more likely
// failure and loses report authority; ties cannot occur because
// suspicions are recorded sequentially under mu. A discarded report
// clears the suspicion; a genuinely dead peer is re-confirmed by a
// trusted observer on the next detector tick.
func (c *Coordinator) distrusted(observer, peer int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead[observer] {
		return true
	}
	obsAt, suspected := c.suspectedAt[observer]
	return suspected && !obsAt.After(c.suspectedAt[peer])
}

// clearSuspicion lifts the placement pause on peer and forgets its
// suspicion timestamp so a later, unrelated suspicion starts fresh.
func (c *Coordinator) clearSuspicion(peer int) {
	c.setSuspect(peer, false)
	c.mu.Lock()
	delete(c.suspectedAt, peer)
	c.mu.Unlock()
}

// setSuspect flags (or clears) peer as suspect on every locality that
// can still act on it.
func (c *Coordinator) setSuspect(peer int, v bool) {
	for r := 0; r < c.sys.Size(); r++ {
		if r == peer {
			continue
		}
		if loc := c.sys.Locality(r); !loc.Closed() {
			loc.SetSuspect(peer, v)
		}
	}
}

// ping calls the liveness service on peer from observer. The call is
// bounded and retried by the RPC layer itself: each attempt waits
// Timeout before the probe frame is resent, and only exhausting all
// PingRetries resends declares the probe failed — a single dropped
// frame on a lossy link is not evidence of death. A transport-level
// link failure still fails the call immediately (stronger evidence
// than silence).
func (c *Coordinator) ping(observer, peer int) error {
	loc := c.sys.Locality(observer)
	deadline := time.Duration(c.opts.PingRetries+1) * c.opts.Timeout
	return loc.Call(peer, methodPing, &struct{}{}, nil,
		runtime.WithDeadline(deadline),
		runtime.WithRetries(c.opts.PingRetries, c.opts.Timeout),
		runtime.WithMaxBackoff(c.opts.Timeout),
		runtime.WithIdempotent())
}

// ---------------------------------------------------------------
// Recovery sequence
// ---------------------------------------------------------------

// ReportDeath declares a rank dead and runs the recovery sequence:
// exclusion (every live locality marks the rank dead, failing calls
// toward it), pin release, lost-task collection, and — depending on
// the mode — respawning or future failure. It is idempotent per rank
// and serializes with other recoveries.
func (c *Coordinator) ReportDeath(dead int) {
	if !c.sys.Locality(dead).IsMember(dead) {
		// Latent or gracefully departed ranks are not failures: a
		// straggler confirmation racing a drain must not trigger a
		// recovery sequence for a rank that migrated its state out.
		return
	}
	c.mu.Lock()
	if c.dead[dead] {
		c.mu.Unlock()
		return
	}
	c.dead[dead] = true
	// Allocate the fence epoch for this death from the coordinator's
	// monotonic epoch counter: every survivor adopts it and rejects
	// frames from the dead rank stamped with an older epoch — a
	// partitioned-then-healed rank cannot keep mutating survivor state.
	c.epoch++
	fence := c.epoch
	cp := c.cp
	c.mu.Unlock()

	c.recMu.Lock()
	defer c.recMu.Unlock()
	start := time.Now()
	sp := c.tracer().Begin("recovery.recover", fmt.Sprintf("rank %d", dead), 0)
	defer func() {
		sp.End()
		c.deaths.Inc()
		c.recoverHist.Observe(time.Since(start))
	}()

	live := c.liveRanks()
	// 1. Exclusion and fencing: every locality — latent ranks included,
	// so a later join inherits the verdict — marks the rank dead under
	// the agreed fence epoch. Future sends fail fast, pending calls
	// toward it resolve with runtime.ErrPeerFailed, schedulers skip it
	// for placement and stealing, the DIM routes index traffic around
	// it, and its inbound frames are rejected at dispatch.
	for r := 0; r < c.sys.Size(); r++ {
		if r != dead {
			c.sys.Locality(r).MarkDeadEpoch(dead, fence)
		}
	}
	// 2. The dead rank's replica pins will never be confirmed: release
	// them everywhere so they cannot block write consolidation.
	for _, r := range live {
		c.sys.Manager(r).ReleasePinsOf(dead)
	}
	// 3. Collect the tasks lost with the rank: every live scheduler
	// surrenders the specs it shipped or handed to the dead rank.
	// The union over-approximates; keep only tasks whose (live) origin
	// still awaits the result.
	seen := make(map[uint64]bool)
	var lost []sched.TaskSpec
	for _, r := range live {
		for _, spec := range c.sys.Scheduler(r).HandleDeath(dead) {
			if seen[spec.ID] {
				continue
			}
			seen[spec.ID] = true
			if spec.Origin == dead || c.isDead(spec.Origin) {
				continue // the waiter died with its task
			}
			if !c.sys.Locality(spec.Origin).PromisePending(spec.Promise) {
				continue // completed before the crash
			}
			lost = append(lost, spec)
		}
	}

	// 4. Rebuild the distributed index without the dead rank. This is
	// a liveness requirement in both modes: index nodes the dead rank
	// hosted are re-homed onto survivors that hold none of their
	// state, so even the *survivors'* coverage under those nodes
	// vanishes from lookups while the root's allocation set still
	// claims it — staging would spin forever. Retract + republish +
	// re-derived claims make every live fragment findable (and the
	// dead rank's share claimable) again. In rollback mode whatever
	// in-flight tasks do with that window is discarded by Restore.
	if err := c.retractAll(live); err == nil {
		if err := c.republishAll(live); err == nil {
			c.syncAlloc(live)
		}
	}

	if cp != nil {
		// Rollback mode: fail the futures so the task wave unwinds;
		// the driver rolls back via Restore and re-runs the phase.
		for _, spec := range lost {
			err := fmt.Errorf("%w: task %d lost on rank %d", runtime.ErrPeerFailed, spec.ID, dead)
			c.sys.Locality(spec.Origin).FulfillRemote(spec.Promise, nil, err)
			c.requeued.Inc()
		}
		c.report.RequeuedTasks += len(lost)
		c.report.Dead = append(c.report.Dead, dead)
		sort.Ints(c.report.Dead)
		return
	}

	// Respawn mode: re-execute the lost tasks on survivors. Sound
	// only for tasks without data requirements — see the package
	// comment.
	rsp := c.tracer().Begin("recovery.respawn", fmt.Sprintf("%d tasks", len(lost)), sp.SpanID())
	for _, spec := range lost {
		if err := c.sys.Scheduler(spec.Origin).Respawn(spec); err != nil {
			c.sys.Locality(spec.Origin).FulfillRemote(spec.Promise, nil,
				fmt.Errorf("%w: respawn of task %d failed: %v", runtime.ErrPeerFailed, spec.ID, err))
			continue
		}
		c.respawned.Inc()
		c.report.RespawnedTasks++
	}
	rsp.End()
	c.report.Dead = append(c.report.Dead, dead)
	sort.Ints(c.report.Dead)
}

func (c *Coordinator) isDead(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[rank]
}

// retractAll drives index-coverage retraction on every live rank under
// a fresh recovery epoch (phase 1; a barrier — all retractions
// complete before the caller republishes).
func (c *Coordinator) retractAll(live []int) error {
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()
	if len(live) == 0 {
		return fmt.Errorf("recovery: no live ranks")
	}
	sp := c.tracer().Begin("recovery.retract", fmt.Sprintf("epoch %d", epoch), 0)
	defer sp.End()
	drv := c.sys.Manager(live[0])
	for _, r := range live {
		if err := drv.RetractRemote(r, epoch); err != nil {
			sp.SetErr(err)
			return fmt.Errorf("recovery: retract at rank %d: %w", r, err)
		}
	}
	return nil
}

// republishAll rebuilds the index from the live leaf coverages
// (phase 2).
func (c *Coordinator) republishAll(live []int) error {
	sp := c.tracer().Begin("recovery.republish", "", 0)
	defer sp.End()
	drv := c.sys.Manager(live[0])
	for _, r := range live {
		if err := drv.RepublishRemote(r); err != nil {
			sp.SetErr(err)
			return fmt.Errorf("recovery: republish at rank %d: %w", r, err)
		}
	}
	return nil
}

// syncAlloc re-derives the allocation claims at the live index root
// host (phase 3). The root host is the lowest live rank.
func (c *Coordinator) syncAlloc(live []int) error {
	drv := c.sys.Manager(live[0])
	if err := drv.SyncAllocRemote(live[0]); err != nil {
		return fmt.Errorf("recovery: sync allocations: %w", err)
	}
	return nil
}

// Restore rolls the system back to the registered checkpoint after a
// crash (rollback mode): index coverage is retracted everywhere, every
// live rank's fragments are force-reset to their checkpoint shares —
// with dead ranks' shares re-homed onto the next live rank — and the
// index and allocation claims are rebuilt. The caller must have waited
// for the failed task wave to unwind (the PFor error return implies
// it).
func (c *Coordinator) Restore() error {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	c.mu.Lock()
	cp := c.cp
	deadSet := make(map[int]bool, len(c.dead))
	for r := range c.dead {
		deadSet[r] = true
	}
	c.mu.Unlock()
	if cp == nil {
		return fmt.Errorf("recovery: Restore without a checkpoint (SetCheckpoint first)")
	}
	live := c.liveRanks()
	if len(live) == 0 {
		return fmt.Errorf("recovery: no live ranks")
	}
	sp := c.tracer().Begin("recovery.rehome", fmt.Sprintf("%d records", len(cp.Records)), 0)
	defer sp.End()

	if err := c.retractAll(live); err != nil {
		sp.SetErr(err)
		return err
	}

	// Re-home: group the checkpoint records by their post-crash target
	// (dead ranks remap to the next live rank, wrapping), then force-
	// reset every (live rank, item) fragment — including ranks without
	// records, which must drop their post-checkpoint coverage.
	remap := func(r int) int {
		if !deadSet[r] {
			return r
		}
		size := c.sys.Size()
		for off := 1; off < size; off++ {
			t := (r + off) % size
			if !deadSet[t] && c.sys.Locality(t).IsMember(t) {
				return t
			}
		}
		return r
	}
	items := make(map[dim.ItemID]bool)
	byTarget := make(map[int]map[dim.ItemID][]*dim.LocalSnapshot)
	rehomed := 0
	for i := range cp.Records {
		rec := &cp.Records[i]
		items[rec.Item] = true
		target := remap(rec.Rank)
		if target != rec.Rank {
			rehomed++
		}
		m := byTarget[target]
		if m == nil {
			m = make(map[dim.ItemID][]*dim.LocalSnapshot)
			byTarget[target] = m
		}
		m[rec.Item] = append(m[rec.Item], &rec.Snapshot)
	}
	for id := range items {
		for _, r := range live {
			var snaps []*dim.LocalSnapshot
			if m := byTarget[r]; m != nil {
				snaps = m[id]
			}
			if err := c.sys.Manager(r).ResetLocal(id, snaps); err != nil {
				sp.SetErr(err)
				return fmt.Errorf("recovery: reset %v at rank %d: %w", id, r, err)
			}
		}
	}

	if err := c.republishAll(live); err != nil {
		sp.SetErr(err)
		return err
	}
	if err := c.syncAlloc(live); err != nil {
		sp.SetErr(err)
		return err
	}
	c.rehomed.Add(uint64(rehomed))
	c.report.RehomedRecords += rehomed
	return nil
}
