package recovery

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"allscale/internal/apps/stencil"
	"allscale/internal/chaos"
	"allscale/internal/core"
	"allscale/internal/runtime"
	"allscale/internal/sched"
	"allscale/internal/transport"
)

// chaosSystem builds an n-locality system over the in-process fabric
// with every endpoint wrapped in a chaos layer (shared partition
// controller, per-rank deterministic fault streams). The fabric must
// be started by the caller after all services are registered.
func chaosSystem(t *testing.T, n int, cfg chaos.Config, sysCfg core.Config) (*core.System, *chaos.Controller, func()) {
	t.Helper()
	fab := transport.NewFabric(n)
	ctl := chaos.NewController()
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = chaos.Wrap(fab.Endpoint(i), ctl, cfg)
	}
	sysCfg.Endpoints = eps
	sys := core.NewSystem(sysCfg)
	t.Cleanup(func() {
		sys.Close()
		fab.Close()
	})
	return sys, ctl, func() { fab.Start() }
}

// TestDirectedPartitionFencesStaleRank is the partition-fencing
// scenario of DESIGN.md §6d: rank 3's outbound frames are severed (a
// directed partition — it still hears everyone, so only the survivors
// escalate). The survivors must declare it dead only after ping-retry
// exhaustion, rebuild a clean index, and — once the partition heals —
// reject the stale rank's frames at dispatch instead of letting it
// mutate survivor state. A second task wave on the survivors then
// proves exactly-once execution under the lossy fabric.
func TestDirectedPartitionFencesStaleRank(t *testing.T) {
	const n, victim, tasks = 4, 3, 24
	p := stencil.Params{N: 24, Steps: 4, C: 0.1, MinGrain: 32}

	// Mild ambient chaos everywhere: ~2% drops plus delay/reorder. Both
	// planes get a tight retry budget (the data plane is unsupervised by
	// default — a dropped fetch would hang the run forever); the failure
	// detector must not produce false deaths.
	calls := runtime.CallProfile{
		Control: runtime.CallSpec{Deadline: 10 * time.Second, Attempt: 250 * time.Millisecond, Retries: 6},
		Data:    runtime.CallSpec{Deadline: 20 * time.Second, Attempt: 500 * time.Millisecond, Retries: 6},
	}
	sys, ctl, startFabric := chaosSystem(t, n,
		chaos.Config{Seed: 42, Drop: 0.02, Delay: 0.1, MaxDelay: time.Millisecond},
		core.Config{
			Policy:   &sched.RoundRobinPolicy{},
			Recovery: core.RecoveryConfig{Heartbeat: 20 * time.Millisecond, Timeout: 150 * time.Millisecond},
			Calls:    &calls,
		})
	app := stencil.NewAllScale(sys, p)
	var executed atomic.Int64
	sys.RegisterKind(func(rank int) *sched.Kind {
		return &sched.Kind{
			Name: "wave.count",
			Process: func(ctx *sched.Ctx) (any, error) {
				executed.Add(1)
				var x int
				ctx.Args(&x)
				return x, nil
			},
		}
	})
	sys.Start()
	startFabric()
	rec := Attach(sys, Options{PingRetries: 2})

	// Phase 1: a full stencil pass over the healthy-but-lossy fabric,
	// populating fragments and the distributed index on all four ranks.
	if err := app.CreateItems(); err != nil {
		t.Fatal(err)
	}
	if err := app.Init(); err != nil {
		t.Fatal(err)
	}
	if err := app.RunSteps(0, p.Steps); err != nil {
		t.Fatalf("stencil under ambient chaos: %v", err)
	}
	if dead := rec.DeadRanks(); len(dead) != 0 {
		t.Fatalf("ambient chaos alone produced deaths: %v", dead)
	}

	// Phase 2: directed partition — everything rank 3 sends vanishes.
	for r := 0; r < n; r++ {
		if r != victim {
			ctl.Block(victim, r)
		}
	}
	if !rec.WaitDeaths(1, 15*time.Second) {
		t.Fatalf("partitioned rank not declared dead; dead = %v", rec.DeadRanks())
	}
	if got := rec.DeadRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("dead = %v, want [%d]", got, victim)
	}
	// Death needed ping-retry exhaustion, so the suspicion episode is
	// on the books; ping resends also guarantee retry traffic.
	if v := sys.Metrics(0).Counter(MetricSuspects).Value(); v == 0 {
		t.Fatal("death declared without a recorded suspicion episode")
	}
	// The coordinator's detectors are done with their job; stop them
	// before healing so the partitioned rank's own (equally partitioned)
	// view cannot race fresh confirmations during the assertions below.
	rec.Stop()
	verifyLiveIndex(t, sys, victim)

	// Phase 3: the partition heals. The fenced rank still believes it
	// is a member and talks under its stale epoch — every frame must be
	// rejected at dispatch on the survivors without touching state.
	for r := 0; r < n; r++ {
		if r != victim {
			ctl.Heal(victim, r)
		}
	}
	fencedBefore := sys.Metrics(0).Counter(runtime.MetricRPCFencedFrames).Value()
	err := sys.Locality(victim).Call(0, "recovery.ping", &struct{}{}, nil,
		runtime.WithDeadline(400*time.Millisecond),
		runtime.WithRetries(2, 100*time.Millisecond),
		runtime.WithIdempotent())
	if !errors.Is(err, runtime.ErrCallTimeout) {
		t.Fatalf("stale rank's call: err = %v, want ErrCallTimeout (silently fenced)", err)
	}
	if v := sys.Metrics(0).Counter(runtime.MetricRPCFencedFrames).Value(); v <= fencedBefore {
		t.Fatal("no fenced frame counted at the survivor after the heal")
	}
	verifyLiveIndex(t, sys, victim)

	// Phase 4: a task wave across the survivors over the still-lossy
	// fabric — every task must execute exactly once (retries are
	// deduplicated server-side), and none may land on the fenced rank.
	execBase := executed.Load()
	futs := make([]*runtime.Future, tasks)
	for i := range futs {
		f, err := sys.Spawn("wave.count", i)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, f := range futs {
		var out int
		if err := f.WaitInto(&out); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if out != i {
			t.Fatalf("task %d = %d", i, out)
		}
	}
	if got := executed.Load() - execBase; got != tasks {
		t.Fatalf("wave executed %d tasks, want exactly %d", got, tasks)
	}

	// The lossy link forced retries somewhere (the confirmation pings
	// alone resend), and no survivor call may be stranded: in-flight
	// supervised retries (e.g. fire-and-forget fulfil acks crossing the
	// lossy link) get their full budget to drain, then pending must be
	// exactly zero.
	quiesce := func(rank int) int {
		deadline := time.Now().Add(30 * time.Second)
		for {
			pend := sys.Locality(rank).PendingCalls()
			if pend == 0 || time.Now().After(deadline) {
				return pend
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	var retries uint64
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		retries += sys.Metrics(r).Counter(runtime.MetricRPCRetries).Value()
		if pend := quiesce(r); pend != 0 {
			t.Fatalf("rank %d has %d stranded calls after quiescence", r, pend)
		}
	}
	if retries == 0 {
		t.Fatal("no retries recorded across survivors despite 2% drop + partition")
	}
	// The partition itself was observed by the chaos layer.
	if v := sys.Metrics(victim).Counter(chaos.MetricPartitionDrops).Value(); v == 0 {
		t.Fatal("no partition drops counted at the victim")
	}
}

// TestDrainedRankStragglerIsFenced covers the drain half of the
// membership fence (DESIGN.md §6g): after a graceful drain the retired
// rank's process may linger and emit straggler frames — a late
// coverage report, a stale heartbeat. Survivors must reject them at
// dispatch (counted as fenced frames), exactly like a crashed rank's
// frames after a healed partition, and the failure detector must not
// have fired on the way out.
func TestDrainedRankStragglerIsFenced(t *testing.T) {
	const n, victim = 3, 2
	sys, _, startFabric := chaosSystem(t, n, chaos.Config{}, core.Config{
		Recovery: core.RecoveryConfig{Heartbeat: 20 * time.Millisecond, Timeout: 500 * time.Millisecond},
	})
	sys.Start()
	startFabric()
	rec := Attach(sys, Options{})
	defer rec.Stop()

	if err := rec.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if !sys.Locality(0).IsDeparted(victim) || !sys.Locality(victim).IsDeparted(victim) {
		t.Fatal("drained rank not departed on every view")
	}

	// The drained rank's old incarnation sends a straggler report: the
	// survivor must fence it silently — the call times out instead of
	// mutating survivor state or resurrecting the membership.
	fencedBefore := sys.Metrics(0).Counter(runtime.MetricRPCFencedFrames).Value()
	err := sys.Locality(victim).Call(0, "recovery.ping", &struct{}{}, nil,
		runtime.WithDeadline(400*time.Millisecond),
		runtime.WithRetries(2, 100*time.Millisecond),
		runtime.WithIdempotent())
	if !errors.Is(err, runtime.ErrCallTimeout) {
		t.Fatalf("straggler call: err = %v, want ErrCallTimeout (silently fenced)", err)
	}
	if v := sys.Metrics(0).Counter(runtime.MetricRPCFencedFrames).Value(); v <= fencedBefore {
		t.Fatal("no fenced frame counted at the survivor")
	}
	if dead := rec.DeadRanks(); len(dead) != 0 {
		t.Fatalf("graceful drain tripped the failure detector: %v", dead)
	}
	if got := sys.Locality(0).LiveRanks(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LiveRanks after drain = %v, want [0 1]", got)
	}
}

// TestPreJoinFrameIsFenced covers the join half of the fence: a member
// that has already installed the joiner's fence epoch must reject any
// frame the joiner sent before its handshake (stamped with the old
// epoch), while the same call goes through once the joiner has adopted
// the epoch via the real join protocol.
func TestPreJoinFrameIsFenced(t *testing.T) {
	const n, joiner = 3, 2
	sys, _, startFabric := chaosSystem(t, n, chaos.Config{}, core.Config{
		Latent:   []int{joiner},
		Recovery: core.RecoveryConfig{Heartbeat: 20 * time.Millisecond, Timeout: 500 * time.Millisecond},
	})
	sys.Start()
	startFabric()
	rec := Attach(sys, Options{})
	defer rec.Stop()

	// Pre-join, pre-fence: a latent rank's control traffic flows (this
	// is how item catalogs stay in sync before admission).
	if err := sys.Locality(joiner).Call(1, "recovery.ping", &struct{}{}, nil,
		runtime.WithDeadline(time.Second), runtime.WithIdempotent()); err != nil {
		t.Fatalf("latent control call: %v", err)
	}

	// Rank 1 installs the joiner's fence — the admission step of the
	// join protocol — while the joiner still runs under its old epoch:
	// its frames are now stale and must be fenced.
	sys.Locality(1).MarkJoined(joiner, 100)
	fencedBefore := sys.Metrics(1).Counter(runtime.MetricRPCFencedFrames).Value()
	err := sys.Locality(joiner).Call(1, "recovery.ping", &struct{}{}, nil,
		runtime.WithDeadline(400*time.Millisecond),
		runtime.WithRetries(2, 100*time.Millisecond),
		runtime.WithIdempotent())
	if !errors.Is(err, runtime.ErrCallTimeout) {
		t.Fatalf("pre-join frame: err = %v, want ErrCallTimeout (fenced below the join epoch)", err)
	}
	if v := sys.Metrics(1).Counter(runtime.MetricRPCFencedFrames).Value(); v <= fencedBefore {
		t.Fatal("no fenced frame counted at the member")
	}

	// The real handshake fences the joiner into the current epoch; its
	// calls pass everywhere from then on.
	if err := rec.Join(joiner); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if !sys.Locality(r).IsMember(joiner) {
			t.Fatalf("rank %d does not see the joiner as a member", r)
		}
	}
	if err := sys.Locality(joiner).Call(1, "recovery.ping", &struct{}{}, nil,
		runtime.WithDeadline(time.Second), runtime.WithIdempotent()); err != nil {
		t.Fatalf("post-join call: %v", err)
	}
	if dead := rec.DeadRanks(); len(dead) != 0 {
		t.Fatalf("join produced deaths: %v", dead)
	}
}
