package elastic_test

import (
	"testing"
	"time"

	"allscale/internal/core"
	"allscale/internal/elastic"
	"allscale/internal/monitor"
	"allscale/internal/recovery"
)

func TestDecideJoinsLatentRankOnHighLoad(t *testing.T) {
	d := elastic.Decide(
		[]int64{10, 12, 0},
		[]bool{true, true, false},
		[]bool{false, false, true},
		elastic.Options{HighLoad: 5},
	)
	if d.Action != elastic.Join || d.Rank != 2 {
		t.Fatalf("Decide = %+v, want Join rank 2", d)
	}
}

func TestDecideNoJoinWithoutSpareCapacity(t *testing.T) {
	d := elastic.Decide(
		[]int64{10, 12},
		[]bool{true, true},
		[]bool{false, false},
		elastic.Options{HighLoad: 5},
	)
	if d.Action != elastic.None {
		t.Fatalf("Decide = %+v, want None (no latent rank)", d)
	}
}

func TestDecideJoinRespectsMaxMembers(t *testing.T) {
	d := elastic.Decide(
		[]int64{10, 12, 0},
		[]bool{true, true, false},
		[]bool{false, false, true},
		elastic.Options{HighLoad: 5, MaxMembers: 2},
	)
	if d.Action != elastic.None {
		t.Fatalf("Decide = %+v, want None (at MaxMembers)", d)
	}
}

func TestDecideDrainsIdleMember(t *testing.T) {
	d := elastic.Decide(
		[]int64{0, 0, 0},
		[]bool{true, true, true},
		[]bool{false, false, false},
		elastic.Options{MinMembers: 2},
	)
	if d.Action != elastic.Drain || d.Rank != 2 {
		t.Fatalf("Decide = %+v, want Drain rank 2 (least-loaded, highest-numbered)", d)
	}
}

func TestDecideDrainRespectsMinMembersAndRankZero(t *testing.T) {
	d := elastic.Decide(
		[]int64{0, 0},
		[]bool{true, true},
		[]bool{false, false},
		elastic.Options{MinMembers: 2},
	)
	if d.Action != elastic.None {
		t.Fatalf("Decide = %+v, want None (at MinMembers)", d)
	}
	d = elastic.Decide(
		[]int64{0},
		[]bool{true},
		[]bool{false},
		elastic.Options{MinMembers: 1},
	)
	if d.Action != elastic.None {
		t.Fatalf("Decide = %+v, want None (rank 0 is never drained)", d)
	}
}

func TestDecideKeepsModerateLoad(t *testing.T) {
	d := elastic.Decide(
		[]int64{3, 2, 4},
		[]bool{true, true, true},
		[]bool{false, false, false},
		elastic.Options{HighLoad: 8, LowLoad: 1, MinMembers: 1},
	)
	if d.Action != elastic.None {
		t.Fatalf("Decide = %+v, want None (load inside the band)", d)
	}
}

// TestControllerDrainsIdleSystem drives the full loop: an idle
// 3-locality system scales itself down to MinMembers through graceful
// drains — no failure detector involvement, no deaths.
func TestControllerDrainsIdleSystem(t *testing.T) {
	sys := core.NewSystem(core.Config{Localities: 3, Workers: 2})
	defer sys.Close()
	coord := recovery.Attach(sys, recovery.Options{
		Heartbeat: 20 * time.Millisecond, Timeout: 200 * time.Millisecond,
	})
	defer coord.Stop()
	sys.Start()

	mon := monitor.Start(sys, 10*time.Millisecond, 16)
	defer mon.Stop()
	ctl := elastic.Start(sys, mon, coord, elastic.Options{
		MinMembers: 1,
		Interval:   15 * time.Millisecond,
		Cooldown:   20 * time.Millisecond,
	})
	defer ctl.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if sys.Locality(1).IsDeparted(1) && sys.Locality(2).IsDeparted(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller did not drain down to MinMembers; report %+v", coord.Report())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep := coord.Report()
	if len(rep.Dead) != 0 {
		t.Fatalf("drain tripped the failure detector: deaths %v", rep.Dead)
	}
	if len(rep.Drained) != 2 {
		t.Fatalf("Report.Drained = %v, want two drains", rep.Drained)
	}
	if !sys.Locality(0).IsMember(0) {
		t.Fatalf("rank 0 must survive as the last member")
	}
	if got := sys.Locality(0).LiveRanks(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("LiveRanks = %v, want [0]", got)
	}
	// The membership counters surface through the monitor under the
	// names the recovery package registers them as.
	mon.SampleNow()
	samples, ok := mon.Latest()
	if !ok {
		t.Fatal("monitor has no samples")
	}
	if samples[0].Drains != 2 {
		t.Fatalf("monitor Drains = %d, want 2", samples[0].Drains)
	}
	if samples[0].Joins != 0 {
		t.Fatalf("monitor Joins = %d, want 0", samples[0].Joins)
	}
}
