// Package elastic implements the scaling controller of the elastic
// membership subsystem (DESIGN.md §6g): a small feedback loop that
// watches per-locality queue depth through monitor samples and drives
// recovery.Join / recovery.Drain automatically — localities as a
// dynamically managed resource in the ParalleX/HPX tradition, shaped
// like the autoscaler pattern of actions-runner-controller (scale up
// on backlog, scale down on sustained idleness, bounded by a min/max
// member count and a cooldown).
//
// The decision function is pure and separately testable; the
// controller merely samples, decides and actuates.
package elastic

import (
	"sync"
	"time"

	"allscale/internal/core"
	"allscale/internal/monitor"
)

// Actuator drives membership changes; *recovery.Coordinator
// implements it.
type Actuator interface {
	Join(rank int) error
	Drain(rank int) error
}

// Action is a scaling decision.
type Action int

const (
	// None keeps the membership as it is.
	None Action = iota
	// Join admits the decision's rank into the membership.
	Join
	// Drain gracefully retires the decision's rank.
	Drain
)

// Decision is the outcome of one control round.
type Decision struct {
	Action Action
	Rank   int
}

// Options tunes the controller.
type Options struct {
	// MinMembers floors the membership; drains stop there. Default 1.
	MinMembers int
	// MaxMembers caps the membership; joins stop there. Default: the
	// system size.
	MaxMembers int
	// HighLoad is the mean queued+running tasks per member above which
	// a latent rank is joined. Default 8.
	HighLoad float64
	// LowLoad is the mean load per member below which the least-loaded
	// member is drained. Default 0 — meaning scale-down only happens
	// when the system is completely idle unless configured otherwise.
	LowLoad float64
	// Interval is the control period. Default 500ms.
	Interval time.Duration
	// Cooldown is the minimum gap between two membership changes, so
	// one warm-up's transient load cannot trigger the next decision.
	// Default 4× Interval.
	Cooldown time.Duration
	// Backlog, when non-nil, supplies the job service's admitted
	// backlog (admitted jobs not yet completed, jobs.Service.Backlog):
	// the controller then scales on tenant demand rather than raw
	// queue depth, spreading the backlog evenly over the member loads
	// before deciding. A burst of admitted jobs thus triggers scale-up
	// even while their tasks are still funneling through the fair
	// queues, and members stay up until the service actually drains.
	Backlog func() int64
}

func (o *Options) normalize(size int) {
	if o.MinMembers <= 0 {
		o.MinMembers = 1
	}
	if o.MaxMembers <= 0 || o.MaxMembers > size {
		o.MaxMembers = size
	}
	if o.HighLoad <= 0 {
		o.HighLoad = 8
	}
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 4 * o.Interval
	}
}

// Decide is the pure scaling rule: loads[r] is the queued+running
// task count of rank r, member[r]/latent[r] its membership state
// (latent = usable spare capacity, i.e. not dead and not departed).
// Scale-up picks the lowest latent rank; scale-down picks the
// least-loaded, highest-numbered member — never rank 0, which anchors
// the system's metrics and recovery services.
func Decide(loads []int64, member, latent []bool, opts Options) Decision {
	opts.normalize(len(loads))
	var members []int
	var total int64
	for r := range loads {
		if r < len(member) && member[r] {
			members = append(members, r)
			total += loads[r]
		}
	}
	if len(members) == 0 {
		return Decision{Action: None}
	}
	mean := float64(total) / float64(len(members))

	if mean > opts.HighLoad && len(members) < opts.MaxMembers {
		for r := range latent {
			if latent[r] && !(r < len(member) && member[r]) {
				return Decision{Action: Join, Rank: r}
			}
		}
	}
	if mean <= opts.LowLoad && len(members) > opts.MinMembers {
		victim, best := -1, int64(-1)
		for _, r := range members {
			if r == 0 {
				continue
			}
			if victim < 0 || loads[r] < best || (loads[r] == best && r > victim) {
				victim, best = r, loads[r]
			}
		}
		if victim > 0 {
			return Decision{Action: Drain, Rank: victim}
		}
	}
	return Decision{Action: None}
}

// Controller periodically samples the system and actuates Decide's
// verdicts.
type Controller struct {
	sys  *core.System
	mon  *monitor.Monitor
	act  Actuator
	opts Options

	mu   sync.Mutex
	last time.Time // time of the last actuated change

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Start begins the control loop. The monitor must already be sampling
// the same system.
func Start(sys *core.System, mon *monitor.Monitor, act Actuator, opts Options) *Controller {
	opts.normalize(sys.Size())
	c := &Controller{
		sys: sys, mon: mon, act: act, opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.loop()
	return c
}

// Stop ends the control loop; idempotent.
func (c *Controller) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

func (c *Controller) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.Tick()
	}
}

// Tick runs one control round immediately (the loop's body; exported
// for deterministic tests). It returns the decision it actuated, or
// Action None.
func (c *Controller) Tick() Decision {
	c.mu.Lock()
	inCooldown := !c.last.IsZero() && time.Since(c.last) < c.opts.Cooldown
	c.mu.Unlock()
	if inCooldown {
		return Decision{Action: None}
	}
	samples, ok := c.mon.Latest()
	if !ok {
		return Decision{Action: None}
	}
	size := c.sys.Size()
	loads := make([]int64, size)
	member := make([]bool, size)
	latent := make([]bool, size)
	for _, s := range samples {
		if s.Rank >= 0 && s.Rank < size {
			loads[s.Rank] = s.Load
		}
	}
	for r := 0; r < size; r++ {
		loc := c.sys.Locality(r)
		member[r] = loc.IsMember(r)
		latent[r] = !member[r] && !loc.IsDead(r) && !loc.IsDeparted(r)
	}
	if c.opts.Backlog != nil {
		// Service mode: the load signal is the admitted backlog, not
		// raw queue depth. Spread it evenly over the members so
		// Decide's per-member mean compares against HighLoad/LowLoad
		// unchanged.
		var members int64
		for r := 0; r < size; r++ {
			if member[r] {
				members++
			}
		}
		if members > 0 {
			backlog := c.opts.Backlog()
			share := backlog / members
			rem := backlog % members
			for r := 0; r < size; r++ {
				if member[r] {
					loads[r] = share
					if rem > 0 {
						loads[r]++
						rem--
					}
				} else {
					loads[r] = 0
				}
			}
		}
	}
	d := Decide(loads, member, latent, c.opts)
	switch d.Action {
	case Join:
		if err := c.act.Join(d.Rank); err != nil {
			return Decision{Action: None}
		}
	case Drain:
		if err := c.act.Drain(d.Rank); err != nil {
			return Decision{Action: None}
		}
	default:
		return d
	}
	c.mu.Lock()
	c.last = time.Now()
	c.mu.Unlock()
	return d
}
