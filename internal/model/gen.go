package model

import "math/rand"

// GenConfig parameterises RandomProgram.
type GenConfig struct {
	// MaxDepth bounds the spawn hierarchy depth (Lemma A.1 requires a
	// finite hierarchy).
	MaxDepth int
	// MaxFanout bounds the number of children a task spawns.
	MaxFanout int
	// Items is the number of data items the entry task creates.
	Items int
	// ItemSize is the element count per item.
	ItemSize Elem
	// SharedReads adds a dedicated read-only item that leaf tasks read
	// concurrently, exercising replication.
	SharedReads bool
	// VariantsPerTask in [1..n]; additional variants of the same task
	// are behaviourally equivalent copies (computational equivalence
	// assumption of Section 2.2).
	VariantsPerTask int
}

// DefaultGenConfig returns a configuration that yields small but
// structurally rich programs.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxDepth:        3,
		MaxFanout:       3,
		Items:           2,
		ItemSize:        16,
		SharedReads:     true,
		VariantsPerTask: 2,
	}
}

// RandomProgram generates a well-formed, deadlock-free random program:
// a fork-join task tree in which the entry task creates all data
// items, inner tasks only spawn and sync, and leaf tasks read/write
// element ranges partitioned so that no two concurrently live tasks
// have conflicting requirements. This mirrors the structure the
// AllScale compiler emits for prec-based programs and satisfies all
// assumptions of Section 2 (unique spawn points, disjoint variants,
// finite task hierarchy, termination).
func RandomProgram(rng *rand.Rand, cfg GenConfig) *Program {
	p := &Program{
		Tasks:    make(map[TaskID]*Task),
		Variants: make(map[VariantID]*Variant),
		Items:    make(map[ItemID]Elem),
	}
	nextTask := TaskID(0)
	nextVariant := VariantID(0)

	sharedItem := ItemID(-1)
	for i := 0; i < cfg.Items; i++ {
		p.Items[ItemID(i)] = cfg.ItemSize
	}
	if cfg.SharedReads {
		sharedItem = ItemID(cfg.Items)
		p.Items[sharedItem] = cfg.ItemSize
	}

	// Partition the element space of each item among the leaves. We
	// first build the tree shape, then assign slices.
	type node struct {
		id       TaskID
		children []*node
		leaf     bool
	}
	var build func(depth int) *node
	build = func(depth int) *node {
		n := &node{id: nextTask}
		nextTask++
		if depth >= cfg.MaxDepth || rng.Intn(3) == 0 {
			n.leaf = true
			return n
		}
		fanout := 1 + rng.Intn(cfg.MaxFanout)
		for i := 0; i < fanout; i++ {
			n.children = append(n.children, build(depth+1))
		}
		return n
	}
	root := build(0)

	var leaves []*node
	var collect func(n *node)
	collect = func(n *node) {
		if n.leaf {
			leaves = append(leaves, n)
			return
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(root)

	// Assign each leaf a disjoint slice of each writable item.
	slice := func(item ItemID, idx, total int) []ElemRange {
		n := p.Items[item]
		lo := Elem(int64(n) * int64(idx) / int64(total))
		hi := Elem(int64(n) * int64(idx+1) / int64(total))
		if lo >= hi {
			return nil
		}
		return []ElemRange{{lo, hi}}
	}

	mkVariants := func(n *node, script []Action, reads, writes []Requirement) {
		t := &Task{ID: n.id}
		nv := 1
		if cfg.VariantsPerTask > 1 {
			nv = 1 + rng.Intn(cfg.VariantsPerTask)
		}
		for i := 0; i < nv; i++ {
			v := &Variant{
				ID:     nextVariant,
				Task:   n.id,
				Script: script,
				Reads:  reads,
				Writes: writes,
			}
			p.Variants[v.ID] = v
			t.Variants = append(t.Variants, v.ID)
			nextVariant++
		}
		p.Tasks[n.id] = t
	}

	var emit func(n *node, leafIdx *int)
	emit = func(n *node, leafIdx *int) {
		if n.leaf {
			idx := *leafIdx
			*leafIdx++
			var reads, writes []Requirement
			for i := 0; i < cfg.Items; i++ {
				item := ItemID(i)
				rs := slice(item, idx, len(leaves))
				if len(rs) == 0 {
					continue
				}
				switch rng.Intn(3) {
				case 0:
					writes = append(writes, Requirement{Item: item, Ranges: rs})
				case 1:
					reads = append(reads, Requirement{Item: item, Ranges: rs})
				default:
					// Read and write the same private slice.
					writes = append(writes, Requirement{Item: item, Ranges: rs})
					reads = append(reads, Requirement{Item: item, Ranges: rs})
				}
			}
			if sharedItem >= 0 && rng.Intn(2) == 0 {
				reads = append(reads, Requirement{Item: sharedItem, Ranges: []ElemRange{{0, p.Items[sharedItem] / 2}}})
			}
			mkVariants(n, []Action{{Kind: ActEnd}}, reads, writes)
			return
		}
		var script []Action
		for _, c := range n.children {
			script = append(script, Action{Kind: ActSpawn, Task: c.id})
		}
		// Sync in random order over children.
		order := rng.Perm(len(n.children))
		for _, i := range order {
			script = append(script, Action{Kind: ActSync, Task: n.children[i].id})
		}
		script = append(script, Action{Kind: ActEnd})
		mkVariants(n, script, nil, nil)
		for _, c := range n.children {
			emit(c, leafIdx)
		}
	}

	if root.leaf {
		// Degenerate single-task program: still create/destroy items.
		var script []Action
		for d := range p.Items {
			script = append(script, Action{Kind: ActCreate, Item: d})
		}
		script = append(script, Action{Kind: ActEnd})
		mkVariants(root, script, nil, nil)
	} else {
		// Entry creates all items up front, spawns/syncs children,
		// then destroys a random subset of items.
		var script []Action
		for d := Elem(0); int(d) < len(p.Items); d++ {
			script = append(script, Action{Kind: ActCreate, Item: ItemID(d)})
		}
		for _, c := range root.children {
			script = append(script, Action{Kind: ActSpawn, Task: c.id})
		}
		for _, c := range root.children {
			script = append(script, Action{Kind: ActSync, Task: c.id})
		}
		for d := Elem(0); int(d) < len(p.Items); d++ {
			if rng.Intn(2) == 0 {
				script = append(script, Action{Kind: ActDestroy, Item: ItemID(d)})
			}
		}
		script = append(script, Action{Kind: ActEnd})
		mkVariants(root, script, nil, nil)
		leafIdx := 0
		for _, c := range root.children {
			emit(c, &leafIdx)
		}
	}
	p.Entry = root.id
	return p
}
