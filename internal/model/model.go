// Package model is an executable rendition of the formal AllScale
// application model of Section 2 of the paper: the data model
// (Definitions 2.1–2.2), the task model (Definitions 2.3–2.7), the
// architecture model (Definition 2.8), and the execution model — the
// system state of Definition 2.9 and the ten state-transition rules of
// Figs. 2 and 3 (Definition 2.10).
//
// The package serves as the specification for the implementation
// packages and as a harness to machine-check the model properties of
// Section 2.5 (single-execution, termination, satisfied requirements,
// exclusive writes, data preservation) on randomized programs; see the
// property tests.
package model

import "fmt"

// TaskID identifies a task (an element of the set T, Definition 2.3).
type TaskID int

// VariantID identifies a task variant (an element of the set V).
// Tasks never share variants (Section 2.2, disjointness assumption).
type VariantID int

// ItemID identifies a data item (an element of the set D,
// Definition 2.1).
type ItemID int

// Elem is the logical address of a data element within a data item
// (an element of the set E). Addresses are logical, not physical
// (Section 2.1).
type Elem int64

// ComputeUnit identifies a compute unit (an element of C,
// Definition 2.8).
type ComputeUnit int

// MemSpace identifies a memory address space (an element of M).
type MemSpace int

// ActionKind enumerates the actions of Definition 2.5.
type ActionKind int

const (
	// ActSpawn requests the runtime to schedule a new task.
	ActSpawn ActionKind = iota
	// ActSync suspends the current task until another completes.
	ActSync
	// ActCreate introduces a new data item to the runtime.
	ActCreate
	// ActDestroy requests the destruction of a data item.
	ActDestroy
	// ActEnd signals the termination of the current task.
	ActEnd
)

func (k ActionKind) String() string {
	switch k {
	case ActSpawn:
		return "spawn"
	case ActSync:
		return "sync"
	case ActCreate:
		return "create"
	case ActDestroy:
		return "destroy"
	case ActEnd:
		return "end"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Action is a service request toward the runtime system triggered by
// a task (Definition 2.5). Task is meaningful for spawn/sync, Item
// for create/destroy.
type Action struct {
	Kind ActionKind
	Task TaskID
	Item ItemID
}

func (a Action) String() string {
	switch a.Kind {
	case ActSpawn, ActSync:
		return fmt.Sprintf("%v(t%d)", a.Kind, a.Task)
	case ActCreate, ActDestroy:
		return fmt.Sprintf("%v(d%d)", a.Kind, a.Item)
	}
	return a.Kind.String()
}

// ElemRange is a contiguous set of element addresses [Lo, Hi) within
// one data item; requirement sets are unions of ranges.
type ElemRange struct {
	Lo, Hi Elem
}

// Contains reports whether e lies in the range.
func (r ElemRange) Contains(e Elem) bool { return r.Lo <= e && e < r.Hi }

// Each calls fn for every element of the range.
func (r ElemRange) Each(fn func(Elem)) {
	for e := r.Lo; e < r.Hi; e++ {
		fn(e)
	}
}

// Requirement is one data requirement of a variant (Definition 2.7):
// the elements of one data item read or written during execution.
type Requirement struct {
	Item   ItemID
	Ranges []ElemRange
}

// Each calls fn for every required element.
func (rq Requirement) Each(fn func(Elem)) {
	for _, r := range rq.Ranges {
		r.Each(fn)
	}
}

// Variant is one implementation alternative of a task
// (Definition 2.3). Its behaviour is a finite script of actions: the
// task-local state (Definition 2.6) is the program counter, init maps
// to pc 0, and step(v, pc) = (pc+1, Script[pc]). Every script ends
// with ActEnd; the model checks this at program construction.
type Variant struct {
	ID     VariantID
	Task   TaskID
	Script []Action
	Reads  []Requirement // read(v, ·), Definition 2.7
	Writes []Requirement // write(v, ·)
}

// Task groups its implementation variants (Definition 2.3,
// var: T → 2^V \ ∅).
type Task struct {
	ID       TaskID
	Variants []VariantID
}

// Program is an entry-point task together with the closed universe of
// tasks, variants and data items it may reach (Definition 2.4).
type Program struct {
	Entry    TaskID
	Tasks    map[TaskID]*Task
	Variants map[VariantID]*Variant
	// Items assigns each data item its element universe elems(d)
	// (Definition 2.1), given as the count of addressable elements
	// 0..N-1.
	Items map[ItemID]Elem
}

// Validate checks the well-formedness restrictions the paper imposes:
// non-empty variant sets, scripts ending in end with no interior end,
// variant/task cross-references, disjoint variant ownership, unique
// spawn points for every non-entry task, and requirements within the
// element universe of their item.
func (p *Program) Validate() error {
	if _, ok := p.Tasks[p.Entry]; !ok {
		return fmt.Errorf("model: entry task t%d undefined", p.Entry)
	}
	owner := make(map[VariantID]TaskID)
	for tid, t := range p.Tasks {
		if t.ID != tid {
			return fmt.Errorf("model: task map key t%d does not match ID t%d", tid, t.ID)
		}
		if len(t.Variants) == 0 {
			return fmt.Errorf("model: task t%d has no variants (var must be non-empty)", tid)
		}
		for _, vid := range t.Variants {
			if prev, dup := owner[vid]; dup {
				return fmt.Errorf("model: variant v%d shared by tasks t%d and t%d", vid, prev, tid)
			}
			owner[vid] = tid
			v, ok := p.Variants[vid]
			if !ok {
				return fmt.Errorf("model: task t%d references undefined variant v%d", tid, vid)
			}
			if v.Task != tid {
				return fmt.Errorf("model: variant v%d back-reference t%d, want t%d", vid, v.Task, tid)
			}
		}
	}
	spawnPoints := make(map[TaskID]int)
	for vid, v := range p.Variants {
		if v.ID != vid {
			return fmt.Errorf("model: variant map key v%d does not match ID v%d", vid, v.ID)
		}
		if len(v.Script) == 0 || v.Script[len(v.Script)-1].Kind != ActEnd {
			return fmt.Errorf("model: variant v%d script must end with end", vid)
		}
		for i, a := range v.Script {
			if a.Kind == ActEnd && i != len(v.Script)-1 {
				return fmt.Errorf("model: variant v%d has interior end at step %d", vid, i)
			}
			switch a.Kind {
			case ActSpawn:
				if a.Task == p.Entry {
					return fmt.Errorf("model: variant v%d spawns the entry point", vid)
				}
				if _, ok := p.Tasks[a.Task]; !ok {
					return fmt.Errorf("model: variant v%d spawns undefined task t%d", vid, a.Task)
				}
				spawnPoints[a.Task]++
			case ActSync:
				if _, ok := p.Tasks[a.Task]; !ok {
					return fmt.Errorf("model: variant v%d syncs on undefined task t%d", vid, a.Task)
				}
			case ActCreate, ActDestroy:
				if _, ok := p.Items[a.Item]; !ok {
					return fmt.Errorf("model: variant v%d uses undefined item d%d", vid, a.Item)
				}
			}
		}
		for _, reqs := range [][]Requirement{v.Reads, v.Writes} {
			for _, rq := range reqs {
				n, ok := p.Items[rq.Item]
				if !ok {
					return fmt.Errorf("model: variant v%d requires undefined item d%d", vid, rq.Item)
				}
				for _, r := range rq.Ranges {
					if r.Lo < 0 || r.Hi > n {
						return fmt.Errorf("model: variant v%d requirement [%d,%d) outside elems(d%d)=[0,%d)", vid, r.Lo, r.Hi, rq.Item, n)
					}
				}
			}
		}
	}
	// Unique spawn points (Section 2.2): tolerate multiple variants of
	// the same parent spawning the same child, since only one variant
	// of the parent ever executes (single-execution); but a child
	// spawned from variants of two different tasks is rejected.
	spawners := make(map[TaskID]map[TaskID]bool)
	for vid, v := range p.Variants {
		for _, a := range v.Script {
			if a.Kind == ActSpawn {
				if spawners[a.Task] == nil {
					spawners[a.Task] = make(map[TaskID]bool)
				}
				spawners[a.Task][p.Variants[vid].Task] = true
			}
		}
	}
	for child, parents := range spawners {
		if len(parents) > 1 {
			return fmt.Errorf("model: task t%d has spawn points in %d distinct tasks", child, len(parents))
		}
	}
	return nil
}

// Arch is the bipartite architecture graph (C ⊎ M, L) of
// Definition 2.8.
type Arch struct {
	Units []ComputeUnit
	Mems  []MemSpace
	// Links holds the edge set L ⊆ C × M.
	Links map[ComputeUnit]map[MemSpace]bool
}

// NewCluster models the distributed-memory system of Example 2.4: n
// nodes, each forming its own address space with coresPerNode cores
// linked only to the local memory.
func NewCluster(n, coresPerNode int) *Arch {
	a := &Arch{Links: make(map[ComputeUnit]map[MemSpace]bool)}
	for node := 0; node < n; node++ {
		m := MemSpace(node)
		a.Mems = append(a.Mems, m)
		for core := 0; core < coresPerNode; core++ {
			c := ComputeUnit(node*coresPerNode + core)
			a.Units = append(a.Units, c)
			a.Links[c] = map[MemSpace]bool{m: true}
		}
	}
	return a
}

// Linked reports whether compute unit c can access address space m.
func (a *Arch) Linked(c ComputeUnit, m MemSpace) bool { return a.Links[c][m] }

// MemsOf returns the address spaces accessible from c.
func (a *Arch) MemsOf(c ComputeUnit) []MemSpace {
	var out []MemSpace
	for _, m := range a.Mems {
		if a.Links[c][m] {
			out = append(out, m)
		}
	}
	return out
}
