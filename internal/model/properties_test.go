package model

import (
	"math/rand"
	"testing"
)

// TestModelPropertiesOnRandomPrograms machine-checks the Section 2.5
// properties on randomized programs driven by an adversarial random
// scheduler:
//
//   - satisfied requirements and exclusive writes hold in every state,
//   - data preservation holds across every transition,
//   - single-execution holds over every finished trace,
//   - every trace terminates within a finite progress-step budget
//     (termination).
func TestModelPropertiesOnRandomPrograms(t *testing.T) {
	const runs = 60
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, DefaultGenConfig())
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
		arch := NewCluster(1+rng.Intn(4), 1+rng.Intn(4))
		x := NewExplorer(p, arch, seed*7919+1)
		if err := x.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !x.S.Terminal() {
			t.Fatalf("seed %d: trace did not terminate", seed)
		}
		if err := CheckSingleExecution(x.Trace, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSameProgramManySchedules checks schedule-independence of
// termination (the termination property quantifies over all traces):
// one fixed program must terminate under many different random
// schedules, and every schedule must start each task exactly once.
func TestSameProgramManySchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := RandomProgram(rng, GenConfig{
		MaxDepth: 3, MaxFanout: 3, Items: 2, ItemSize: 12,
		SharedReads: true, VariantsPerTask: 2,
	})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	arch := NewCluster(3, 2)
	var firstStarted map[TaskID]bool
	for schedule := int64(0); schedule < 25; schedule++ {
		x := NewExplorer(p, arch, schedule)
		if err := x.Run(); err != nil {
			t.Fatalf("schedule %d: %v", schedule, err)
		}
		started := make(map[TaskID]bool)
		for _, r := range x.Trace {
			if r.Rule == "start" {
				started[r.Task] = true
			}
		}
		if firstStarted == nil {
			firstStarted = started
		} else if len(started) != len(firstStarted) {
			// All schedules must process the same set of tasks
			// (single-execution + computational equivalence).
			t.Fatalf("schedule %d started %d tasks, first schedule %d",
				schedule, len(started), len(firstStarted))
		}
	}
}

// TestTerminationBound verifies the proof idea of Theorem A.3: the
// number of progress transitions of any full trace is bounded by the
// total script length of one variant per reachable task.
func TestTerminationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := RandomProgram(rng, DefaultGenConfig())
	arch := NewCluster(2, 2)

	// Upper bound: longest variant script per task (each sync step
	// additionally costs one continue transition), plus one start
	// transition per task, summed.
	bound := 0
	for _, task := range p.Tasks {
		longest := 0
		for _, v := range task.Variants {
			n := len(p.Variants[v].Script)
			for _, a := range p.Variants[v].Script {
				if a.Kind == ActSync {
					n++
				}
			}
			if n > longest {
				longest = n
			}
		}
		bound += longest + 1
	}

	for schedule := int64(0); schedule < 10; schedule++ {
		x := NewExplorer(p, arch, 1000+schedule)
		if err := x.Run(); err != nil {
			t.Fatal(err)
		}
		progress := 0
		for _, r := range x.Trace {
			switch r.Rule {
			case "start", "spawn", "sync", "continue", "end", "create", "destroy":
				progress++
			}
		}
		if progress > bound {
			t.Fatalf("schedule %d used %d progress steps, bound %d", schedule, progress, bound)
		}
	}
}

// TestDataPreservationAllowsReplicaRemoval reproduces the worked
// example of Appendix A.2.5: a replicated element can be dropped via
// a (migrate) onto the surviving copy, while the last copy can never
// disappear.
func TestDataPreservationAllowsReplicaRemoval(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{7})
	if err := s.Replicate(0, 1, 0, []Elem{7}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.CopiesOf(0, 7)); got != 2 {
		t.Fatalf("copies = %d, want 2", got)
	}
	before := s.CurrentFootprint()
	// Eliminate the copy in m0 by migrating it onto m1.
	if err := s.Migrate(0, 1, 0, []Elem{7}); err != nil {
		t.Fatal(err)
	}
	if got := s.CopiesOf(0, 7); len(got) != 1 || got[0] != 1 {
		t.Fatalf("copies after removal = %v", got)
	}
	if err := CheckDataPreservation(before, s.CurrentFootprint(), "migrate", -1); err != nil {
		t.Fatalf("replica removal must preserve data: %v", err)
	}
}

func BenchmarkExplorerTrace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := RandomProgram(rng, DefaultGenConfig())
	arch := NewCluster(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := NewExplorer(p, arch, int64(i))
		x.CheckEveryStep = false
		if err := x.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
