package model

import "fmt"

// This file formulates the extension the paper explicitly defers
// (Section 2.4): "Extension of our model covering dynamic
// environments where compute nodes may join or leave (crash) can be
// formulated, but exceed[s] the scope of this paper." Two additional
// runtime-controlled transitions are added:
//
//   - (join): a new node — one address space plus its compute units —
//     appears; no state other than the architecture changes.
//   - (crash): a node disappears; its address space's data D|m and
//     any locks on it vanish, and variants running or blocked on its
//     compute units are lost. Tasks whose variants were lost revert to
//     Q so another variant can be started elsewhere (re-execution, the
//     recovery discipline of the resilience manager).
//   - (drain): the graceful dual of (crash): a node leaves only after
//     its work has finished (no variant runs or blocks on its compute
//     units, no lock touches its address space) and every sole-copy
//     element has migrated to a survivor via the ordinary (migrate)
//     rule; replicas are simply dropped. Nothing is lost and no task
//     is requeued — the model-level contract of recovery.Drain.
//
// Properties (checked in dynamic_test.go):
//
//   - crash-preservation: data replicated in at least one surviving
//     address space survives a crash — the formal justification for
//     replication-based resilience;
//   - re-executability: after a crash, a terminating program still
//     terminates, provided lost data elements are re-initializable
//     (the (init) rule applies again because the crash removed the
//     last copy);
//   - drain/join-preservation: across any interleaving of (join),
//     (drain) and scheduler steps, the data footprint is preserved
//     exactly — no element is lost and no element becomes
//     double-owned by a space outside the architecture.

// JoinNode applies the (join) rule: extend the architecture by a new
// address space with the given number of compute units, returning the
// new MemSpace. Mutating the architecture is safe because Arch is
// owned by the state's program run.
func (s *State) JoinNode(cores int) (MemSpace, error) {
	if cores <= 0 {
		return 0, fmt.Errorf("join: need at least one compute unit")
	}
	maxMem := MemSpace(-1)
	for _, m := range s.Arch.Mems {
		if m > maxMem {
			maxMem = m
		}
	}
	m := maxMem + 1
	s.Arch.Mems = append(s.Arch.Mems, m)
	maxCU := ComputeUnit(-1)
	for _, c := range s.Arch.Units {
		if c > maxCU {
			maxCU = c
		}
	}
	for i := 0; i < cores; i++ {
		c := maxCU + 1 + ComputeUnit(i)
		s.Arch.Units = append(s.Arch.Units, c)
		if s.Arch.Links == nil {
			s.Arch.Links = make(map[ComputeUnit]map[MemSpace]bool)
		}
		s.Arch.Links[c] = map[MemSpace]bool{m: true}
	}
	return m, nil
}

// CrashReport summarizes the effects of a (crash) transition.
type CrashReport struct {
	// LostElems lists data elements whose last copy was on the
	// crashed node (survivors elsewhere do not count as lost).
	LostElems []struct {
		Item ItemID
		Elem Elem
	}
	// RequeuedTasks lists tasks whose running/blocked variants were
	// lost and that were re-enqueued.
	RequeuedTasks []TaskID
}

// CrashNode applies the (crash) rule: remove address space m and its
// exclusively-linked compute units. Data present only in m is lost;
// variants on the removed compute units disappear and their tasks are
// re-enqueued.
func (s *State) CrashNode(m MemSpace) (*CrashReport, error) {
	found := false
	for _, mm := range s.Arch.Mems {
		if mm == m {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("crash: unknown address space m%d", m)
	}
	if len(s.Arch.Mems) == 1 {
		return nil, fmt.Errorf("crash: cannot remove the last address space")
	}
	rep := &CrashReport{}

	// Record elements whose last copy lives on m.
	for d, elems := range s.D[m] {
		for e := range elems {
			if len(s.CopiesOf(d, e)) == 1 {
				rep.LostElems = append(rep.LostElems, struct {
					Item ItemID
					Elem Elem
				}{d, e})
			}
		}
	}
	// Drop the address space's data.
	delete(s.D, m)
	// Drop locks referring to m.
	for k := range s.Lr {
		if k.M == m {
			delete(s.Lr, k)
		}
	}
	for k := range s.Lw {
		if k.M == m {
			delete(s.Lw, k)
		}
	}

	// Identify compute units that only link to m; they go down with
	// the node.
	gone := map[ComputeUnit]bool{}
	var unitsLeft []ComputeUnit
	for _, c := range s.Arch.Units {
		links := s.Arch.Links[c]
		if links[m] && len(links) == 1 {
			gone[c] = true
			delete(s.Arch.Links, c)
			continue
		}
		delete(links, m)
		unitsLeft = append(unitsLeft, c)
	}
	s.Arch.Units = unitsLeft
	var memsLeft []MemSpace
	for _, mm := range s.Arch.Mems {
		if mm != m {
			memsLeft = append(memsLeft, mm)
		}
	}
	s.Arch.Mems = memsLeft

	// Lose variants on dead compute units; re-enqueue their tasks and
	// release the remaining locks of the lost variants.
	requeue := func(v VariantID) {
		t := s.Prog.Variants[v].Task
		s.Q[t] = true
		rep.RequeuedTasks = append(rep.RequeuedTasks, t)
		for k := range s.Lr {
			if k.V == v {
				delete(s.Lr, k)
			}
		}
		for k := range s.Lw {
			if k.V == v {
				delete(s.Lw, k)
			}
		}
	}
	for v, e := range s.R {
		if gone[e.CU] {
			delete(s.R, v)
			requeue(v)
		}
	}
	for v, e := range s.B {
		if gone[e.CU] {
			delete(s.B, v)
			requeue(v)
		}
	}
	return rep, nil
}

// DrainReport summarizes the effects of a (drain) transition.
type DrainReport struct {
	// MigratedElems counts sole-copy elements moved to a survivor.
	MigratedElems int
	// DroppedReplicas counts element copies discarded because another
	// address space still holds one.
	DroppedReplicas int
}

// DrainNode applies the (drain) rule: gracefully remove address space
// m and its exclusively-linked compute units. Unlike CrashNode it
// refuses unless the node is quiescent — no variant running or
// blocked on its compute units and no lock involving its address
// space — and it loses nothing: sole-copy elements migrate to the
// lowest surviving address space through the (migrate) rule, replicas
// are dropped. The data footprint is preserved exactly.
func (s *State) DrainNode(m MemSpace) (*DrainReport, error) {
	found := false
	for _, mm := range s.Arch.Mems {
		if mm == m {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("drain: unknown address space m%d", m)
	}
	if len(s.Arch.Mems) == 1 {
		return nil, fmt.Errorf("drain: cannot remove the last address space")
	}

	// Compute units going down with the node.
	gone := map[ComputeUnit]bool{}
	for _, c := range s.Arch.Units {
		links := s.Arch.Links[c]
		if links[m] && len(links) == 1 {
			gone[c] = true
		}
	}
	// Graceful preconditions: the node is quiescent.
	for v, e := range s.R {
		if gone[e.CU] {
			return nil, fmt.Errorf("drain: variant v%d still running on m%d", v, m)
		}
	}
	for v, e := range s.B {
		if gone[e.CU] {
			return nil, fmt.Errorf("drain: variant v%d still blocked on m%d", v, m)
		}
	}
	for k := range s.Lr {
		if k.M == m {
			return nil, fmt.Errorf("drain: read lock on (d%d,e%d) still held at m%d", k.D, k.E, m)
		}
	}
	for k := range s.Lw {
		if k.M == m {
			return nil, fmt.Errorf("drain: write lock on (d%d,e%d) still held at m%d", k.D, k.E, m)
		}
	}

	// Destination for sole copies: the lowest surviving address space.
	dst := MemSpace(-1)
	for _, mm := range s.Arch.Mems {
		if mm == m {
			continue
		}
		if dst < 0 || mm < dst {
			dst = mm
		}
	}

	rep := &DrainReport{}
	type presence struct {
		d ItemID
		e Elem
	}
	var sole, replicas []presence
	for d, elems := range s.D[m] {
		for e := range elems {
			if len(s.CopiesOf(d, e)) == 1 {
				sole = append(sole, presence{d, e})
			} else {
				replicas = append(replicas, presence{d, e})
			}
		}
	}
	// Sole copies migrate through the ordinary (migrate) rule: its
	// lock preconditions hold by quiescence (a lock implies a copy,
	// and sole copies at m carry no locks anywhere else).
	for _, p := range sole {
		if err := s.Migrate(m, dst, p.d, []Elem{p.e}); err != nil {
			return nil, fmt.Errorf("drain: %w", err)
		}
		rep.MigratedElems++
	}
	for _, p := range replicas {
		s.removePresence(m, p.d, p.e)
		rep.DroppedReplicas++
	}
	delete(s.D, m)

	// Remove the architecture slice of the node (the CrashNode tail,
	// minus the requeues — there is nothing to requeue).
	var unitsLeft []ComputeUnit
	for _, c := range s.Arch.Units {
		if gone[c] {
			delete(s.Arch.Links, c)
			continue
		}
		delete(s.Arch.Links[c], m)
		unitsLeft = append(unitsLeft, c)
	}
	s.Arch.Units = unitsLeft
	var memsLeft []MemSpace
	for _, mm := range s.Arch.Mems {
		if mm != m {
			memsLeft = append(memsLeft, mm)
		}
	}
	s.Arch.Mems = memsLeft
	return rep, nil
}
