package model

import "fmt"

// This file formulates the extension the paper explicitly defers
// (Section 2.4): "Extension of our model covering dynamic
// environments where compute nodes may join or leave (crash) can be
// formulated, but exceed[s] the scope of this paper." Two additional
// runtime-controlled transitions are added:
//
//   - (join): a new node — one address space plus its compute units —
//     appears; no state other than the architecture changes.
//   - (crash): a node disappears; its address space's data D|m and
//     any locks on it vanish, and variants running or blocked on its
//     compute units are lost. Tasks whose variants were lost revert to
//     Q so another variant can be started elsewhere (re-execution, the
//     recovery discipline of the resilience manager).
//
// Properties (checked in dynamic_test.go):
//
//   - crash-preservation: data replicated in at least one surviving
//     address space survives a crash — the formal justification for
//     replication-based resilience;
//   - re-executability: after a crash, a terminating program still
//     terminates, provided lost data elements are re-initializable
//     (the (init) rule applies again because the crash removed the
//     last copy).

// JoinNode applies the (join) rule: extend the architecture by a new
// address space with the given number of compute units, returning the
// new MemSpace. Mutating the architecture is safe because Arch is
// owned by the state's program run.
func (s *State) JoinNode(cores int) (MemSpace, error) {
	if cores <= 0 {
		return 0, fmt.Errorf("join: need at least one compute unit")
	}
	maxMem := MemSpace(-1)
	for _, m := range s.Arch.Mems {
		if m > maxMem {
			maxMem = m
		}
	}
	m := maxMem + 1
	s.Arch.Mems = append(s.Arch.Mems, m)
	maxCU := ComputeUnit(-1)
	for _, c := range s.Arch.Units {
		if c > maxCU {
			maxCU = c
		}
	}
	for i := 0; i < cores; i++ {
		c := maxCU + 1 + ComputeUnit(i)
		s.Arch.Units = append(s.Arch.Units, c)
		if s.Arch.Links == nil {
			s.Arch.Links = make(map[ComputeUnit]map[MemSpace]bool)
		}
		s.Arch.Links[c] = map[MemSpace]bool{m: true}
	}
	return m, nil
}

// CrashReport summarizes the effects of a (crash) transition.
type CrashReport struct {
	// LostElems lists data elements whose last copy was on the
	// crashed node (survivors elsewhere do not count as lost).
	LostElems []struct {
		Item ItemID
		Elem Elem
	}
	// RequeuedTasks lists tasks whose running/blocked variants were
	// lost and that were re-enqueued.
	RequeuedTasks []TaskID
}

// CrashNode applies the (crash) rule: remove address space m and its
// exclusively-linked compute units. Data present only in m is lost;
// variants on the removed compute units disappear and their tasks are
// re-enqueued.
func (s *State) CrashNode(m MemSpace) (*CrashReport, error) {
	found := false
	for _, mm := range s.Arch.Mems {
		if mm == m {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("crash: unknown address space m%d", m)
	}
	if len(s.Arch.Mems) == 1 {
		return nil, fmt.Errorf("crash: cannot remove the last address space")
	}
	rep := &CrashReport{}

	// Record elements whose last copy lives on m.
	for d, elems := range s.D[m] {
		for e := range elems {
			if len(s.CopiesOf(d, e)) == 1 {
				rep.LostElems = append(rep.LostElems, struct {
					Item ItemID
					Elem Elem
				}{d, e})
			}
		}
	}
	// Drop the address space's data.
	delete(s.D, m)
	// Drop locks referring to m.
	for k := range s.Lr {
		if k.M == m {
			delete(s.Lr, k)
		}
	}
	for k := range s.Lw {
		if k.M == m {
			delete(s.Lw, k)
		}
	}

	// Identify compute units that only link to m; they go down with
	// the node.
	gone := map[ComputeUnit]bool{}
	var unitsLeft []ComputeUnit
	for _, c := range s.Arch.Units {
		links := s.Arch.Links[c]
		if links[m] && len(links) == 1 {
			gone[c] = true
			delete(s.Arch.Links, c)
			continue
		}
		delete(links, m)
		unitsLeft = append(unitsLeft, c)
	}
	s.Arch.Units = unitsLeft
	var memsLeft []MemSpace
	for _, mm := range s.Arch.Mems {
		if mm != m {
			memsLeft = append(memsLeft, mm)
		}
	}
	s.Arch.Mems = memsLeft

	// Lose variants on dead compute units; re-enqueue their tasks and
	// release the remaining locks of the lost variants.
	requeue := func(v VariantID) {
		t := s.Prog.Variants[v].Task
		s.Q[t] = true
		rep.RequeuedTasks = append(rep.RequeuedTasks, t)
		for k := range s.Lr {
			if k.V == v {
				delete(s.Lr, k)
			}
		}
		for k := range s.Lw {
			if k.V == v {
				delete(s.Lw, k)
			}
		}
	}
	for v, e := range s.R {
		if gone[e.CU] {
			delete(s.R, v)
			requeue(v)
		}
	}
	for v, e := range s.B {
		if gone[e.CU] {
			delete(s.B, v)
			requeue(v)
		}
	}
	return rep, nil
}
