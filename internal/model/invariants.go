package model

import "fmt"

// CheckSatisfiedRequirements verifies the "satisfied requirements"
// property of Section 2.5 on a single state: every lock held by a
// running or blocked variant refers to data present in the locked
// address space, and that space is linked to the variant's compute
// unit — required data is available for the duration of processing.
func (s *State) CheckSatisfiedRequirements() error {
	cuOf := func(v VariantID) (ComputeUnit, bool) {
		if e, ok := s.R[v]; ok {
			return e.CU, true
		}
		if e, ok := s.B[v]; ok {
			return e.CU, true
		}
		return 0, false
	}
	for _, locks := range []map[LockKey]bool{s.Lr, s.Lw} {
		for k := range locks {
			if !s.Present(k.M, k.D, k.E) {
				return fmt.Errorf("satisfied-requirements: lock %+v on absent data", k)
			}
			if cu, live := cuOf(k.V); live {
				if !s.Arch.Linked(cu, k.M) {
					return fmt.Errorf("satisfied-requirements: v%d on c%d holds lock in unlinked m%d", k.V, cu, k.M)
				}
			} else {
				return fmt.Errorf("satisfied-requirements: lock %+v held by non-live variant", k)
			}
		}
	}
	return nil
}

// CheckExclusiveWrites verifies the "exclusive writes" property of
// Section 2.5 on a single state: a write-locked data element exists in
// exactly one address space — the locked one.
func (s *State) CheckExclusiveWrites() error {
	for k := range s.Lw {
		copies := s.CopiesOf(k.D, k.E)
		if len(copies) != 1 || copies[0] != k.M {
			return fmt.Errorf("exclusive-writes: write-locked (d%d,e%d) present in %v, lock at m%d", k.D, k.E, copies, k.M)
		}
	}
	return nil
}

// Footprint summarises which (item, element) pairs are allocated
// anywhere in the system, for the data-preservation trace check.
type Footprint map[ItemID]map[Elem]bool

// CurrentFootprint captures the allocated pairs of the state.
func (s *State) CurrentFootprint() Footprint {
	fp := make(Footprint)
	for _, items := range s.D {
		for d, elems := range items {
			if fp[d] == nil {
				fp[d] = make(map[Elem]bool)
			}
			for e := range elems {
				fp[d][e] = true
			}
		}
	}
	return fp
}

// CheckDataPreservation verifies the "data preservation" property of
// Section 2.5 across one transition: every (item, element) pair
// allocated before the transition is still allocated somewhere after
// it, unless the transition was a (destroy) of that item. Replicas
// may disappear; the last copy may not.
func CheckDataPreservation(before, after Footprint, rule string, destroyed ItemID) error {
	for d, elems := range before {
		if rule == "destroy" && d == destroyed {
			continue
		}
		for e := range elems {
			if !after[d][e] {
				return fmt.Errorf("data-preservation: (d%d,e%d) lost by rule %q", d, e, rule)
			}
		}
	}
	return nil
}

// TraceRecord documents one applied transition for trace-level
// property checks.
type TraceRecord struct {
	Rule    string
	Task    TaskID    // for start
	Variant VariantID // for start/progress/continue
	Item    ItemID    // for init/migrate/replicate/destroy
}

// CheckSingleExecution verifies the "single-execution" property of
// Section 2.5 on a finished trace: exactly one variant per reachable
// task was started, exactly once. started maps each started task to
// the number of (start) transitions and the set of distinct variants.
func CheckSingleExecution(trace []TraceRecord, terminal bool) error {
	starts := make(map[TaskID]int)
	variants := make(map[TaskID]map[VariantID]bool)
	spawned := map[TaskID]bool{}
	for _, r := range trace {
		switch r.Rule {
		case "start":
			starts[r.Task]++
			if variants[r.Task] == nil {
				variants[r.Task] = make(map[VariantID]bool)
			}
			variants[r.Task][r.Variant] = true
		case "spawn":
			spawned[r.Task] = true
		}
	}
	for t, n := range starts {
		if n != 1 {
			return fmt.Errorf("single-execution: task t%d started %d times", t, n)
		}
		if len(variants[t]) != 1 {
			return fmt.Errorf("single-execution: task t%d processed via %d variants", t, len(variants[t]))
		}
	}
	if terminal {
		for t := range spawned {
			if starts[t] != 1 {
				return fmt.Errorf("single-execution: spawned task t%d started %d times in terminating trace", t, starts[t])
			}
		}
	}
	return nil
}

// CheckAll runs the per-state invariants.
func (s *State) CheckAll() error {
	if err := s.CheckSatisfiedRequirements(); err != nil {
		return err
	}
	return s.CheckExclusiveWrites()
}
