package model

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements bounded exhaustive exploration of the
// transition system: starting from s0, every enabled transition of
// every reachable state is expanded (breadth-first, with state
// deduplication via canonical encoding), checking the Section 2.5
// safety invariants in every reachable state. For small programs this
// verifies the properties over ALL schedules rather than sampled
// ones — the strongest evidence short of a mechanized proof.
//
// To keep the state space finite and meaningful, the runtime's
// degrees of freedom are restricted the way the prototype restricts
// them: data operations (init/migrate/replicate) are explored at
// requirement-region granularity (whole read/write sets of variants)
// rather than per element, and starts use the enabler that stages
// exactly the data the chosen variant needs.

// ExhaustiveResult summarizes one exploration.
type ExhaustiveResult struct {
	States      int // distinct states visited
	Transitions int // transitions expanded
	Terminal    int // distinct terminal states
	Deadlocks   int // non-terminal states without enabled transitions
}

// canonical returns a deterministic string encoding of the dynamic
// state components (architecture is constant during exploration).
func (s *State) canonical() string {
	var b strings.Builder
	ids := make([]int, 0, len(s.Q))
	for t := range s.Q {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	fmt.Fprintf(&b, "Q%v|R", ids)
	type rline struct {
		v VariantID
		e RunEntry
	}
	var rs []rline
	for v, e := range s.R {
		rs = append(rs, rline{v, e})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].v < rs[j].v })
	for _, r := range rs {
		fmt.Fprintf(&b, "(%d,%d,%d)", r.v, r.e.CU, r.e.PC)
	}
	b.WriteString("|B")
	type bline struct {
		v VariantID
		e BlockEntry
	}
	var bs []bline
	for v, e := range s.B {
		bs = append(bs, bline{v, e})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].v < bs[j].v })
	for _, x := range bs {
		fmt.Fprintf(&b, "(%d,%d,%d,%d)", x.v, x.e.CU, x.e.PC, x.e.Waiting)
	}
	b.WriteString("|D")
	var ds []string
	for m, items := range s.D {
		for d, elems := range items {
			for e := range elems {
				ds = append(ds, fmt.Sprintf("(%d,%d,%d)", m, d, e))
			}
		}
	}
	sort.Strings(ds)
	b.WriteString(strings.Join(ds, ""))
	b.WriteString("|L")
	var ls []string
	for k := range s.Lr {
		ls = append(ls, fmt.Sprintf("r(%d,%d,%d,%d)", k.V, k.M, k.D, k.E))
	}
	for k := range s.Lw {
		ls = append(ls, fmt.Sprintf("w(%d,%d,%d,%d)", k.V, k.M, k.D, k.E))
	}
	sort.Strings(ls)
	b.WriteString(strings.Join(ls, ""))
	b.WriteString("|C")
	var cs []int
	for d := range s.created {
		cs = append(cs, int(d))
	}
	sort.Ints(cs)
	fmt.Fprintf(&b, "%v", cs)
	return b.String()
}

// successors enumerates every enabled transition of s, returning the
// successor states (each a fresh clone).
func successors(s *State) []*State {
	var out []*State
	try := func(mut func(c *State) error) {
		c := s.Clone()
		if err := mut(c); err == nil {
			out = append(out, c)
		}
	}

	// Progress and continue for live variants.
	for v := range s.R {
		v := v
		try(func(c *State) error { _, err := c.Progress(v); return err })
	}
	for v := range s.B {
		v := v
		try(func(c *State) error { return c.Continue(v) })
	}

	// Starts: for each enqueued task, each variant, each compute
	// unit, each single-memory placement.
	for t := range s.Q {
		task := s.Prog.Tasks[t]
		for _, v := range task.Variants {
			vv := s.Prog.Variants[v]
			for _, cu := range s.Arch.Units {
				for _, m := range s.Arch.MemsOf(cu) {
					pl := Placement{}
					for _, rq := range vv.Reads {
						pl[rq.Item] = m
					}
					for _, rq := range vv.Writes {
						pl[rq.Item] = m
					}
					t, v, cu := t, v, cu
					try(func(c *State) error { return c.Start(t, v, cu, pl) })
				}
			}
		}
	}

	// Data management at requirement-region granularity: for every
	// variant requirement and memory pair, try init, migrate and
	// replicate of the whole region.
	regionsOf := func() map[ItemID][][]Elem {
		regs := make(map[ItemID][][]Elem)
		for _, vv := range s.Prog.Variants {
			for _, reqs := range [][]Requirement{vv.Reads, vv.Writes} {
				for _, rq := range reqs {
					var elems []Elem
					rq.Each(func(e Elem) { elems = append(elems, e) })
					if len(elems) > 0 {
						regs[rq.Item] = append(regs[rq.Item], elems)
					}
				}
			}
		}
		return regs
	}
	for d, regions := range regionsOf() {
		for _, elems := range regions {
			for _, m := range s.Arch.Mems {
				d, elems, m := d, elems, m
				try(func(c *State) error { return c.Init(m, d, elems) })
				for _, m2 := range s.Arch.Mems {
					if m2 == m {
						continue
					}
					m2 := m2
					try(func(c *State) error { return c.Migrate(m, m2, d, elems) })
					try(func(c *State) error { return c.Replicate(m, m2, d, elems) })
				}
			}
		}
	}
	return out
}

// ExploreExhaustive performs the bounded exhaustive exploration,
// checking the per-state invariants everywhere. maxStates bounds the
// visited set (0 = 200k). It fails on the first invariant violation
// or when the bound is exceeded.
func ExploreExhaustive(p *Program, a *Arch, maxStates int) (*ExhaustiveResult, error) {
	if maxStates <= 0 {
		maxStates = 200000
	}
	s0 := NewState(p, a)
	s0.Strict = true
	seen := map[string]bool{s0.canonical(): true}
	queue := []*State{s0}
	res := &ExhaustiveResult{States: 1}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if err := cur.CheckAll(); err != nil {
			return res, fmt.Errorf("model: invariant violated in reachable state %v: %w", cur, err)
		}
		// Terminal states may still have enabled data-management
		// transitions (replicas can be shuffled forever); count them
		// as terminal regardless, and keep expanding — deduplication
		// keeps the space finite.
		if cur.Terminal() {
			res.Terminal++
		}
		succ := successors(cur)
		res.Transitions += len(succ)
		if len(succ) == 0 {
			if !cur.Terminal() {
				res.Deadlocks++
			}
			continue
		}
		for _, nxt := range succ {
			key := nxt.canonical()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.States++
			if res.States > maxStates {
				return res, fmt.Errorf("model: state bound %d exceeded", maxStates)
			}
			queue = append(queue, nxt)
		}
	}
	return res, nil
}
