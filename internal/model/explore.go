package model

import (
	"fmt"
	"math/rand"
	"sort"
)

// Explorer drives a program to termination by repeatedly picking an
// enabled transition at random, acting as an adversarial scheduler
// for the property tests. It plays both roles of the model: the
// application (progress transitions) and the runtime system (start,
// continue, init, migrate, replicate).
type Explorer struct {
	S     *State
	Rand  *rand.Rand
	Trace []TraceRecord
	// MaxSteps bounds the exploration to guard against bugs that
	// would loop forever; well-formed programs terminate long before.
	MaxSteps int
	// DataOpBias is the probability in [0,1) of attempting a
	// spontaneous runtime data operation (migrate/replicate of some
	// unlocked region) before each scheduling decision, exercising the
	// runtime's freedom under the (migrate)/(replicate) rules.
	DataOpBias float64
	// CheckEveryStep enables invariant checking after each transition.
	CheckEveryStep bool
}

// NewExplorer creates an explorer over a fresh initial state in
// strict (conflict-free scheduling) mode.
func NewExplorer(p *Program, a *Arch, seed int64) *Explorer {
	s := NewState(p, a)
	s.Strict = true
	return &Explorer{
		S:              s,
		Rand:           rand.New(rand.NewSource(seed)),
		MaxSteps:       100000,
		DataOpBias:     0.3,
		CheckEveryStep: true,
	}
}

// Run explores until the state is terminal, no transition is enabled
// (deadlock), or the step budget is exhausted. It returns an error on
// invariant violation, deadlock, or budget exhaustion.
func (x *Explorer) Run() error {
	for step := 0; ; step++ {
		if x.S.Terminal() {
			return nil
		}
		if step >= x.MaxSteps {
			return fmt.Errorf("explorer: step budget %d exhausted in %v", x.MaxSteps, x.S)
		}
		before := x.S.CurrentFootprint()
		rule, rec, err := x.step()
		if err != nil {
			return err
		}
		if rule == "" {
			return fmt.Errorf("explorer: deadlock in %v", x.S)
		}
		x.Trace = append(x.Trace, rec)
		if x.CheckEveryStep {
			if err := x.S.CheckAll(); err != nil {
				return fmt.Errorf("after %s: %w", rule, err)
			}
			destroyed := ItemID(-1)
			if rule == "destroy" {
				destroyed = rec.Item
			}
			if err := CheckDataPreservation(before, x.S.CurrentFootprint(), rule, destroyed); err != nil {
				return err
			}
		}
	}
}

// step picks and applies one enabled transition. The empty rule name
// signals that nothing is enabled.
func (x *Explorer) step() (string, TraceRecord, error) {
	// Occasionally act as the runtime: move or replicate unlocked data.
	if x.Rand.Float64() < x.DataOpBias {
		if rule, rec, ok := x.tryRandomDataOp(); ok {
			return rule, rec, nil
		}
	}

	type choice struct {
		rule  string
		apply func() (TraceRecord, error)
	}
	var choices []choice

	// Progress or continue existing variants.
	for _, v := range sortedVariants(x.S.R) {
		v := v
		choices = append(choices, choice{"progress", func() (TraceRecord, error) {
			a, _ := x.S.NextAction(v)
			rule, err := x.S.Progress(v)
			rec := TraceRecord{Rule: rule, Variant: v}
			switch a.Kind {
			case ActSpawn, ActSync:
				rec.Task = a.Task
			case ActCreate, ActDestroy:
				rec.Item = a.Item
			}
			return rec, err
		}})
	}
	for _, v := range sortedBlocked(x.S.B) {
		v := v
		if x.S.TaskCompleted(x.S.B[v].Waiting) {
			choices = append(choices, choice{"continue", func() (TraceRecord, error) {
				return TraceRecord{Rule: "continue", Variant: v}, x.S.Continue(v)
			}})
		}
	}
	// Start enqueued tasks; the enabler stages data first if needed.
	for _, t := range sortedTasks(x.S.Q) {
		t := t
		task := x.S.Prog.Tasks[t]
		for _, v := range task.Variants {
			v := v
			choices = append(choices, choice{"start", func() (TraceRecord, error) {
				return x.enableAndStart(t, v)
			}})
		}
	}

	x.Rand.Shuffle(len(choices), func(i, j int) { choices[i], choices[j] = choices[j], choices[i] })
	for _, c := range choices {
		rec, err := c.apply()
		if err == nil {
			return rec.Rule, rec, nil
		}
		if c.rule == "progress" || c.rule == "continue" {
			// These must not fail once selected; surface the bug.
			return "", TraceRecord{}, err
		}
		// start may legitimately fail (e.g. data locked); try another.
	}
	return "", TraceRecord{}, nil
}

// enableAndStart stages the data requirements of (t, v) on a random
// suitable compute unit using init/replicate/migrate transitions, then
// applies (start). Any staging transition it performs is legal on its
// own, so a subsequent failure leaves a consistent state.
func (x *Explorer) enableAndStart(t TaskID, v VariantID) (TraceRecord, error) {
	vv := x.S.Prog.Variants[v]
	units := append([]ComputeUnit(nil), x.S.Arch.Units...)
	x.Rand.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	var lastErr error
	for _, c := range units {
		mems := x.S.Arch.MemsOf(c)
		if len(mems) == 0 {
			continue
		}
		m := mems[x.Rand.Intn(len(mems))]
		pl := Placement{}
		ok := true
		stage := func(rq Requirement, write bool) {
			if !ok {
				return
			}
			pl[rq.Item] = m
			if !x.S.Created(rq.Item) {
				ok = false // creator task has not run yet
				return
			}
			rq.Each(func(e Elem) {
				if !ok || x.S.Present(m, rq.Item, e) {
					if write && ok {
						// remove replicas elsewhere via migrate of the foreign copy
						ok = x.consolidate(rq.Item, e, m)
					}
					return
				}
				copies := x.S.CopiesOf(rq.Item, e)
				if len(copies) == 0 {
					ok = x.S.Init(m, rq.Item, []Elem{e}) == nil
					return
				}
				src := copies[0]
				if write {
					// single copy must end up at m: migrate.
					if x.S.Migrate(src, m, rq.Item, []Elem{e}) != nil {
						ok = false
						return
					}
					ok = x.consolidate(rq.Item, e, m)
				} else {
					ok = x.S.Replicate(src, m, rq.Item, []Elem{e}) == nil
				}
			})
		}
		for _, rq := range vv.Reads {
			stage(rq, false)
		}
		for _, rq := range vv.Writes {
			stage(rq, true)
		}
		if !ok {
			lastErr = fmt.Errorf("start: could not stage data for v%d at m%d", v, m)
			continue
		}
		if err := x.S.Start(t, v, c, pl); err != nil {
			lastErr = err
			continue
		}
		return TraceRecord{Rule: "start", Task: t, Variant: v}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("start: no compute unit available for t%d", t)
	}
	return TraceRecord{}, lastErr
}

// consolidate removes all copies of (d, e) other than the one at keep,
// by migrating them onto keep (the formal way to drop a replica,
// Appendix A.2.5). It reports success.
func (x *Explorer) consolidate(d ItemID, e Elem, keep MemSpace) bool {
	for _, m := range x.S.CopiesOf(d, e) {
		if m == keep {
			continue
		}
		if x.S.Migrate(m, keep, d, []Elem{e}) != nil {
			return false
		}
	}
	return true
}

// tryRandomDataOp performs a random legal migrate or replicate of a
// single unlocked element, modelling spontaneous runtime data
// management.
func (x *Explorer) tryRandomDataOp() (string, TraceRecord, bool) {
	// Collect present (m, d, e) triples.
	type triple struct {
		m MemSpace
		d ItemID
		e Elem
	}
	var all []triple
	for m, items := range x.S.D {
		for d, elems := range items {
			for e := range elems {
				all = append(all, triple{m, d, e})
			}
		}
	}
	if len(all) == 0 || len(x.S.Arch.Mems) < 2 {
		return "", TraceRecord{}, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].m != all[j].m {
			return all[i].m < all[j].m
		}
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].e < all[j].e
	})
	tr := all[x.Rand.Intn(len(all))]
	md := x.S.Arch.Mems[x.Rand.Intn(len(x.S.Arch.Mems))]
	if md == tr.m {
		return "", TraceRecord{}, false
	}
	if x.Rand.Intn(2) == 0 {
		if x.S.Migrate(tr.m, md, tr.d, []Elem{tr.e}) == nil {
			return "migrate", TraceRecord{Rule: "migrate", Item: tr.d}, true
		}
	} else {
		if x.S.Replicate(tr.m, md, tr.d, []Elem{tr.e}) == nil {
			return "replicate", TraceRecord{Rule: "replicate", Item: tr.d}, true
		}
	}
	return "", TraceRecord{}, false
}

func sortedVariants(m map[VariantID]RunEntry) []VariantID {
	out := make([]VariantID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedBlocked(m map[VariantID]BlockEntry) []VariantID {
	out := make([]VariantID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedTasks(m map[TaskID]bool) []TaskID {
	out := make([]TaskID, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
