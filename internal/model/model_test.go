package model

import (
	"strings"
	"testing"
)

// sumProgram builds the task of Example 2.3 embedded in a minimal
// program: an entry task creating an array item, spawning a sum task
// with a sequential and a "parallel" variant, syncing, and ending.
func sumProgram() *Program {
	const (
		entry  = TaskID(0)
		sum    = TaskID(1)
		sub1   = TaskID(2)
		sub2   = TaskID(3)
		array  = ItemID(0)
		vEntry = VariantID(0)
		vSeq   = VariantID(1)
		vPar   = VariantID(2)
		vSub1  = VariantID(3)
		vSub2  = VariantID(4)
	)
	return &Program{
		Entry: entry,
		Tasks: map[TaskID]*Task{
			entry: {ID: entry, Variants: []VariantID{vEntry}},
			sum:   {ID: sum, Variants: []VariantID{vSeq, vPar}},
			sub1:  {ID: sub1, Variants: []VariantID{vSub1}},
			sub2:  {ID: sub2, Variants: []VariantID{vSub2}},
		},
		Variants: map[VariantID]*Variant{
			vEntry: {ID: vEntry, Task: entry, Script: []Action{
				{Kind: ActCreate, Item: array},
				{Kind: ActSpawn, Task: sum},
				{Kind: ActSync, Task: sum},
				{Kind: ActDestroy, Item: array},
				{Kind: ActEnd},
			}},
			vSeq: {ID: vSeq, Task: sum,
				Script: []Action{{Kind: ActEnd}},
				Reads:  []Requirement{{Item: array, Ranges: []ElemRange{{0, 20}}}},
			},
			vPar: {ID: vPar, Task: sum,
				Script: []Action{
					{Kind: ActSpawn, Task: sub1},
					{Kind: ActSpawn, Task: sub2},
					{Kind: ActSync, Task: sub1},
					{Kind: ActSync, Task: sub2},
					{Kind: ActEnd},
				},
			},
			vSub1: {ID: vSub1, Task: sub1,
				Script: []Action{{Kind: ActEnd}},
				Reads:  []Requirement{{Item: array, Ranges: []ElemRange{{0, 10}}}},
			},
			vSub2: {ID: vSub2, Task: sub2,
				Script: []Action{{Kind: ActEnd}},
				Reads:  []Requirement{{Item: array, Ranges: []ElemRange{{10, 20}}}},
			},
		},
		Items: map[ItemID]Elem{array: 20},
	}
}

func TestProgramValidate(t *testing.T) {
	p := sumProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejectsMalformedPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
		want   string
	}{
		{"missing entry", func(p *Program) { p.Entry = 99 }, "entry task"},
		{"empty variants", func(p *Program) { p.Tasks[1].Variants = nil }, "no variants"},
		{"script without end", func(p *Program) { p.Variants[1].Script = []Action{{Kind: ActSpawn, Task: 2}} }, "must end with end"},
		{"interior end", func(p *Program) {
			p.Variants[0].Script = []Action{{Kind: ActEnd}, {Kind: ActEnd}}
		}, "interior end"},
		{"spawn of entry", func(p *Program) {
			p.Variants[2].Script[0] = Action{Kind: ActSpawn, Task: 0}
		}, "spawns the entry"},
		{"undefined spawn target", func(p *Program) {
			p.Variants[2].Script[0] = Action{Kind: ActSpawn, Task: 42}
		}, "undefined task"},
		{"requirement out of range", func(p *Program) {
			p.Variants[1].Reads = []Requirement{{Item: 0, Ranges: []ElemRange{{0, 21}}}}
		}, "outside elems"},
		// Depending on map iteration order this trips either the
		// back-reference or the shared-ownership check; both mention
		// the offending variant.
		{"shared variant", func(p *Program) {
			p.Tasks[2].Variants = append(p.Tasks[2].Variants, 4)
		}, "v4"},
		{"two spawn points", func(p *Program) {
			p.Variants[3].Script = []Action{{Kind: ActSpawn, Task: 3}, {Kind: ActEnd}}
		}, "spawn points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := sumProgram()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("mutation %q not rejected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNewClusterArch(t *testing.T) {
	// Example 2.4: two nodes, four cores each.
	a := NewCluster(2, 4)
	if len(a.Units) != 8 || len(a.Mems) != 2 {
		t.Fatalf("units=%d mems=%d", len(a.Units), len(a.Mems))
	}
	if !a.Linked(0, 0) || a.Linked(0, 1) {
		t.Fatal("core 0 must link only to memory 0")
	}
	if !a.Linked(7, 1) || a.Linked(7, 0) {
		t.Fatal("core 7 must link only to memory 1")
	}
	if got := a.MemsOf(5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("MemsOf(5) = %v", got)
	}
}

func TestInitialStateIsS0(t *testing.T) {
	p := sumProgram()
	s := NewState(p, NewCluster(1, 1))
	if len(s.Q) != 1 || !s.Q[p.Entry] {
		t.Fatal("s0 must enqueue exactly the entry point")
	}
	if len(s.R)+len(s.B)+len(s.Lr)+len(s.Lw) != 0 || s.presenceCount() != 0 {
		t.Fatal("s0 must otherwise be empty")
	}
	if s.Terminal() {
		t.Fatal("s0 with enqueued entry must not be terminal")
	}
}

// driveEntry starts the entry variant on c0/m0 and progresses it
// through the create action.
func driveEntry(t *testing.T, s *State) {
	t.Helper()
	if err := s.Start(0, 0, 0, Placement{}); err != nil {
		t.Fatalf("start entry: %v", err)
	}
	if rule, err := s.Progress(0); err != nil || rule != "create" {
		t.Fatalf("create: rule=%q err=%v", rule, err)
	}
}

func TestStartRequiresEnqueuedTaskAndMatchingVariant(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 2))
	if err := s.Start(1, 1, 0, Placement{}); err == nil {
		t.Fatal("starting non-enqueued task must fail")
	}
	if err := s.Start(0, 1, 0, Placement{}); err == nil {
		t.Fatal("starting with foreign variant must fail")
	}
}

func TestStartRequiresDataPresence(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 2))
	driveEntry(t, s)
	// Spawn sum.
	if rule, err := s.Progress(0); err != nil || rule != "spawn" {
		t.Fatalf("spawn: %q %v", rule, err)
	}
	// Starting the sequential variant without data must fail.
	if err := s.Start(1, 1, 0, Placement{0: 0}); err == nil {
		t.Fatal("start without present data must fail")
	}
	// Allocate elements 0..20 in memory 0, then it succeeds.
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(0, 0, elems); err != nil {
		t.Fatalf("init: %v", err)
	}
	// Compute unit 2 is on node 1 and cannot reach memory 0.
	if err := s.Start(1, 1, 2, Placement{0: 0}); err == nil {
		t.Fatal("start on unlinked compute unit must fail")
	}
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatalf("start: %v", err)
	}
	// All 20 elements must now be read locked.
	if len(s.Lr) != 20 || len(s.Lw) != 0 {
		t.Fatalf("locks: |Lr|=%d |Lw|=%d", len(s.Lr), len(s.Lw))
	}
	if err := s.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsReplicatedWriteTargets(t *testing.T) {
	p := sumProgram()
	// Make the sequential sum variant a writer.
	p.Variants[1].Writes = p.Variants[1].Reads
	p.Variants[1].Reads = nil
	s := NewState(p, NewCluster(2, 1))
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(0, 0, elems); err != nil {
		t.Fatal(err)
	}
	// Replicate one element to memory 1; Dw ∩ D ≠ ∅ must block start.
	if err := s.Replicate(0, 1, 0, []Elem{5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 0, Placement{0: 0}); err == nil {
		t.Fatal("start with replicated write element must fail")
	}
	// Consolidating the replica re-enables the start.
	if err := s.Migrate(1, 0, 0, []Elem{5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatalf("start after consolidation: %v", err)
	}
	if err := s.CheckExclusiveWrites(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncBlocksAndContinueResumes(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 2))
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	// Entry now syncs on sum.
	if rule, err := s.Progress(0); err != nil || rule != "sync" {
		t.Fatalf("sync: %q %v", rule, err)
	}
	if _, running := s.R[0]; running {
		t.Fatal("variant must have left R")
	}
	if b, ok := s.B[0]; !ok || b.Waiting != 1 {
		t.Fatalf("blocked entry wrong: %+v", b)
	}
	// sum is still enqueued: continue must fail.
	if err := s.Continue(0); err == nil {
		t.Fatal("continue before completion must succeed only after completion")
	}
	// Run sum's parallel variant: spawns two subtasks, syncs, ends.
	if err := s.Start(1, 2, 1, Placement{}); err != nil {
		t.Fatalf("start sum par: %v", err)
	}
	s.Progress(2) // spawn sub1
	s.Progress(2) // spawn sub2
	s.Progress(2) // sync sub1 -> blocked
	// Provide data for the subtasks.
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(0, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(2, 3, 0, Placement{0: 0}); err != nil {
		t.Fatalf("start sub1: %v", err)
	}
	if rule, err := s.Progress(3); err != nil || rule != "end" {
		t.Fatalf("end sub1: %q %v", rule, err)
	}
	if err := s.Continue(2); err != nil {
		t.Fatalf("continue sum: %v", err)
	}
	s.Progress(2) // sync sub2 -> blocked
	if err := s.Start(3, 4, 0, Placement{0: 0}); err != nil {
		t.Fatalf("start sub2: %v", err)
	}
	s.Progress(4) // end sub2
	if err := s.Continue(2); err != nil {
		t.Fatal(err)
	}
	if rule, err := s.Progress(2); err != nil || rule != "end" {
		t.Fatalf("end sum: %q %v", rule, err)
	}
	// Entry resumes, destroys the item, ends.
	if err := s.Continue(0); err != nil {
		t.Fatal(err)
	}
	if rule, err := s.Progress(0); err != nil || rule != "destroy" {
		t.Fatalf("destroy: %q %v", rule, err)
	}
	if rule, err := s.Progress(0); err != nil || rule != "end" {
		t.Fatalf("end entry: %q %v", rule, err)
	}
	if !s.Terminal() {
		t.Fatalf("trace must have terminated: %v", s)
	}
	if s.presenceCount() != 0 {
		t.Fatal("destroy must have removed all data")
	}
}

func TestEndReleasesLocks(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 1))
	driveEntry(t, s)
	s.Progress(0) // spawn
	elems := []Elem{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	s.Init(0, 0, elems)
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	if len(s.Lr) == 0 {
		t.Fatal("start must acquire locks")
	}
	if rule, err := s.Progress(1); err != nil || rule != "end" {
		t.Fatalf("end: %q %v", rule, err)
	}
	if len(s.Lr)+len(s.Lw) != 0 {
		t.Fatal("end must release all locks")
	}
}

func TestInitRules(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	if err := s.Init(0, 0, []Elem{0}); err == nil {
		t.Fatal("init before create must fail")
	}
	driveEntry(t, s)
	if err := s.Init(0, 0, nil); err == nil {
		t.Fatal("init with empty set must fail")
	}
	if err := s.Init(0, 0, []Elem{25}); err == nil {
		t.Fatal("init outside elems(d) must fail")
	}
	if err := s.Init(0, 0, []Elem{3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Init(1, 0, []Elem{3}); err == nil {
		t.Fatal("re-init of allocated element must fail")
	}
	if !s.Present(0, 0, 3) {
		t.Fatal("element missing after init")
	}
}

func TestMigrateAndReplicateLockPreconditions(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	s.Init(0, 0, elems)
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil { // read locks 0..20 at m0
		t.Fatal(err)
	}
	// Migrate of read-locked data must fail (either endpoint).
	if err := s.Migrate(0, 1, 0, []Elem{5}); err == nil {
		t.Fatal("migrate of locked source must fail")
	}
	if err := s.Replicate(0, 1, 0, []Elem{5}); err != nil {
		t.Fatalf("replicate under read lock must be allowed: %v", err)
	}
	if err := s.Migrate(1, 0, 0, []Elem{5}); err == nil {
		t.Fatal("migrate onto locked destination must fail")
	}
	// End the reader; now migration works.
	if _, err := s.Progress(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Migrate(0, 1, 0, []Elem{5}); err != nil {
		t.Fatalf("migrate after unlock: %v", err)
	}
	if got := s.CopiesOf(0, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("copies after migrate = %v", got)
	}
}

func TestReplicateRejectsWriteLockedSource(t *testing.T) {
	p := sumProgram()
	p.Variants[1].Writes = p.Variants[1].Reads
	p.Variants[1].Reads = nil
	s := NewState(p, NewCluster(2, 1))
	driveEntry(t, s)
	s.Progress(0)
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	s.Init(0, 0, elems)
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Replicate(0, 1, 0, []Elem{5}); err == nil {
		t.Fatal("replicate from write-locked source must fail")
	}
}

func TestReplicateRequiresSourcePresence(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	if err := s.Replicate(0, 1, 0, []Elem{5}); err == nil {
		t.Fatal("replicate of absent element must fail")
	}
}

func TestStrictModeBlocksConflictingStarts(t *testing.T) {
	p := sumProgram()
	// Both subtasks write the same range.
	p.Variants[3].Writes = []Requirement{{Item: 0, Ranges: []ElemRange{{0, 10}}}}
	p.Variants[3].Reads = nil
	p.Variants[4].Writes = []Requirement{{Item: 0, Ranges: []ElemRange{{0, 10}}}}
	p.Variants[4].Reads = nil
	s := NewState(p, NewCluster(1, 4))
	s.Strict = true
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	if err := s.Start(1, 2, 0, Placement{}); err != nil {
		t.Fatal(err)
	}
	s.Progress(2) // spawn sub1
	s.Progress(2) // spawn sub2
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	s.Init(0, 0, elems)
	if err := s.Start(2, 3, 1, Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(3, 4, 2, Placement{0: 0}); err == nil {
		t.Fatal("strict mode must reject write-write conflicting start")
	}
	// After the first writer ends, the second may start.
	if _, err := s.Progress(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(3, 4, 2, Placement{0: 0}); err != nil {
		t.Fatalf("start after conflict cleared: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{1, 2})
	c := s.Clone()
	s.Init(0, 0, []Elem{3})
	if c.Present(0, 0, 3) {
		t.Fatal("clone shares presence map")
	}
	s.Progress(0) // spawn in original
	if len(c.Q) != 0 {
		t.Fatal("clone shares queue")
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"spawn(t3)":   {Kind: ActSpawn, Task: 3},
		"sync(t1)":    {Kind: ActSync, Task: 1},
		"create(d2)":  {Kind: ActCreate, Item: 2},
		"destroy(d0)": {Kind: ActDestroy, Item: 0},
		"end":         {Kind: ActEnd},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestStrictMigrateRequiresSourcePresence(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	s.Strict = true
	driveEntry(t, s)
	s.Init(0, 0, []Elem{1})
	// Faithful mode would permit this; strict mode must not let a
	// migration materialize element 2 at the destination.
	if err := s.Migrate(0, 1, 0, []Elem{2}); err == nil {
		t.Fatal("strict migrate of absent element must fail")
	}
	if err := s.Migrate(0, 1, 0, []Elem{1}); err != nil {
		t.Fatal(err)
	}
}
