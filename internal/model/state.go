package model

import (
	"fmt"
	"sort"
)

// RunEntry is an element of the running set R ⊆ C × V × S
// (Definition 2.9): variant v executing on compute unit c with
// task-local state pc.
type RunEntry struct {
	CU ComputeUnit
	PC int
}

// BlockEntry is an element of the blocked set B ⊆ C × V × S × T: a
// suspended variant waiting for the completion of task Waiting.
type BlockEntry struct {
	CU      ComputeUnit
	PC      int
	Waiting TaskID
}

// LockKey identifies one entry of the lock relations Lr, Lw ⊆
// V × M × D × E.
type LockKey struct {
	V VariantID
	M MemSpace
	D ItemID
	E Elem
}

// Placement is the mapping m: D → M chosen by the (start) rule,
// restricted to the data items the variant actually requires.
type Placement map[ItemID]MemSpace

// State is the system state tuple (Q, R, B, D, Lr, Lw, (C ⊎ M, L)) of
// Definition 2.9, bound to the program it executes. All transition
// methods mutate the state in place after validating the rule's
// premises, and return an error when a premise is violated (in which
// case the state is unchanged).
type State struct {
	Prog *Program
	Arch *Arch

	Q map[TaskID]bool        // enqueued, not yet started tasks
	R map[VariantID]RunEntry // running variant executions
	B map[VariantID]BlockEntry
	// D is the data distribution: D[m][d] is the set of elements of
	// item d present in address space m.
	D  map[MemSpace]map[ItemID]map[Elem]bool
	Lr map[LockKey]bool
	Lw map[LockKey]bool

	// created tracks data items introduced by (create) and not yet
	// destroyed; (init), (migrate) and (replicate) are implementation-
	// restricted to such live items.
	created map[ItemID]bool

	// Strict enables the conflict-free start discipline implemented by
	// the real runtime (Section 3.2): a (start) additionally requires
	// that its fresh locks do not conflict with locks already held by
	// other variants (write–write or read–write on the same element).
	// The bare formal rules of Fig. 2 do not demand this; schedulers
	// are expected to provide it.
	Strict bool
}

// NewState returns the initial state s0 of a trace (Definition 2.11):
// only the entry point enqueued, everything else empty.
func NewState(p *Program, a *Arch) *State {
	return &State{
		Prog:    p,
		Arch:    a,
		Q:       map[TaskID]bool{p.Entry: true},
		R:       make(map[VariantID]RunEntry),
		B:       make(map[VariantID]BlockEntry),
		D:       make(map[MemSpace]map[ItemID]map[Elem]bool),
		Lr:      make(map[LockKey]bool),
		Lw:      make(map[LockKey]bool),
		created: make(map[ItemID]bool),
	}
}

// Clone returns a deep copy sharing only the immutable program and
// architecture.
func (s *State) Clone() *State {
	c := &State{
		Prog:    s.Prog,
		Arch:    s.Arch,
		Q:       make(map[TaskID]bool, len(s.Q)),
		R:       make(map[VariantID]RunEntry, len(s.R)),
		B:       make(map[VariantID]BlockEntry, len(s.B)),
		D:       make(map[MemSpace]map[ItemID]map[Elem]bool, len(s.D)),
		Lr:      make(map[LockKey]bool, len(s.Lr)),
		Lw:      make(map[LockKey]bool, len(s.Lw)),
		created: make(map[ItemID]bool, len(s.created)),
		Strict:  s.Strict,
	}
	for k, v := range s.Q {
		c.Q[k] = v
	}
	for k, v := range s.R {
		c.R[k] = v
	}
	for k, v := range s.B {
		c.B[k] = v
	}
	for m, items := range s.D {
		c.D[m] = make(map[ItemID]map[Elem]bool, len(items))
		for d, elems := range items {
			ec := make(map[Elem]bool, len(elems))
			for e := range elems {
				ec[e] = true
			}
			c.D[m][d] = ec
		}
	}
	for k := range s.Lr {
		c.Lr[k] = true
	}
	for k := range s.Lw {
		c.Lw[k] = true
	}
	for k := range s.created {
		c.created[k] = true
	}
	return c
}

// Terminal reports whether the state is a terminal trace state
// (Definition 2.11): Q, R, B and both lock sets empty.
func (s *State) Terminal() bool {
	return len(s.Q) == 0 && len(s.R) == 0 && len(s.B) == 0 && len(s.Lr) == 0 && len(s.Lw) == 0
}

// Present reports whether element e of item d is present in space m.
func (s *State) Present(m MemSpace, d ItemID, e Elem) bool {
	return s.D[m][d][e]
}

// Created reports whether item d is live (created and not destroyed).
func (s *State) Created(d ItemID) bool { return s.created[d] }

// CopiesOf returns the address spaces holding element e of item d, in
// ascending order.
func (s *State) CopiesOf(d ItemID, e Elem) []MemSpace {
	var out []MemSpace
	for m, items := range s.D {
		if items[d][e] {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *State) addPresence(m MemSpace, d ItemID, e Elem) {
	if s.D[m] == nil {
		s.D[m] = make(map[ItemID]map[Elem]bool)
	}
	if s.D[m][d] == nil {
		s.D[m][d] = make(map[Elem]bool)
	}
	s.D[m][d][e] = true
}

func (s *State) removePresence(m MemSpace, d ItemID, e Elem) {
	if s.D[m] != nil && s.D[m][d] != nil {
		delete(s.D[m][d], e)
		if len(s.D[m][d]) == 0 {
			delete(s.D[m], d)
		}
		if len(s.D[m]) == 0 {
			delete(s.D, m)
		}
	}
}

// lockedBy reports whether any variant other than v holds a lock from
// the given lock relation on (m, d, e).
func lockedByOther(locks map[LockKey]bool, v VariantID, m MemSpace, d ItemID, e Elem) bool {
	for k := range locks {
		if k.M == m && k.D == d && k.E == e && k.V != v {
			return true
		}
	}
	return false
}

// anyLock reports whether any variant holds a lock from locks on
// (m, d, e).
func anyLock(locks map[LockKey]bool, m MemSpace, d ItemID, e Elem) bool {
	for k := range locks {
		if k.M == m && k.D == d && k.E == e {
			return true
		}
	}
	return false
}

// variantOf resolves v or fails.
func (s *State) variantOf(v VariantID) (*Variant, error) {
	vv, ok := s.Prog.Variants[v]
	if !ok {
		return nil, fmt.Errorf("model: unknown variant v%d", v)
	}
	return vv, nil
}

// ---------------------------------------------------------------
// Task-related transition rules (Fig. 2)
// ---------------------------------------------------------------

// Start applies the (start) rule: take task t from Q, pick variant
// v ∈ var(t), and start it on compute unit c under the data placement
// pl, locking all elements it accesses. Premises checked:
//
//   - t ∈ Q and v ∈ var(t);
//   - for every required item d: (c, pl(d)) ∈ L and every read/write
//     element of d is present in pl(d);
//   - D ∩ Dw = ∅ — no write-required element has a copy in any other
//     address space than pl(d);
//   - in Strict mode additionally: fresh locks conflict with no lock
//     held by another variant.
func (s *State) Start(t TaskID, v VariantID, c ComputeUnit, pl Placement) error {
	if !s.Q[t] {
		return fmt.Errorf("start: task t%d not enqueued", t)
	}
	task := s.Prog.Tasks[t]
	vv, err := s.variantOf(v)
	if err != nil {
		return err
	}
	found := false
	for _, cand := range task.Variants {
		if cand == v {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("start: v%d not a variant of t%d", v, t)
	}
	// Check data requirements under the placement.
	check := func(reqs []Requirement, write bool) error {
		for _, rq := range reqs {
			m, ok := pl[rq.Item]
			if !ok {
				return fmt.Errorf("start: placement misses item d%d", rq.Item)
			}
			if !s.Arch.Linked(c, m) {
				return fmt.Errorf("start: compute unit c%d not linked to m%d", c, m)
			}
			var fail error
			rq.Each(func(e Elem) {
				if fail != nil {
					return
				}
				if !s.Present(m, rq.Item, e) {
					fail = fmt.Errorf("start: element (m%d,d%d,e%d) not present", m, rq.Item, e)
					return
				}
				if write {
					// D ∩ Dw = ∅: no copy elsewhere.
					for _, other := range s.CopiesOf(rq.Item, e) {
						if other != m {
							fail = fmt.Errorf("start: write element (d%d,e%d) replicated in m%d", rq.Item, e, other)
							return
						}
					}
				}
				if s.Strict {
					if lockedByOther(s.Lw, v, m, rq.Item, e) {
						fail = fmt.Errorf("start: (m%d,d%d,e%d) write-locked by another variant", m, rq.Item, e)
						return
					}
					if write && lockedByOther(s.Lr, v, m, rq.Item, e) {
						fail = fmt.Errorf("start: (m%d,d%d,e%d) read-locked by another variant", m, rq.Item, e)
						return
					}
				}
			})
			if fail != nil {
				return fail
			}
		}
		return nil
	}
	if err := check(vv.Reads, false); err != nil {
		return err
	}
	if err := check(vv.Writes, true); err != nil {
		return err
	}
	// Apply.
	delete(s.Q, t)
	s.R[v] = RunEntry{CU: c, PC: 0} // init(v) = pc 0
	for _, rq := range vv.Reads {
		m := pl[rq.Item]
		rq.Each(func(e Elem) { s.Lr[LockKey{v, m, rq.Item, e}] = true })
	}
	for _, rq := range vv.Writes {
		m := pl[rq.Item]
		rq.Each(func(e Elem) { s.Lw[LockKey{v, m, rq.Item, e}] = true })
	}
	return nil
}

// NextAction returns the action the running variant v will issue on
// its next progress step.
func (s *State) NextAction(v VariantID) (Action, error) {
	entry, ok := s.R[v]
	if !ok {
		return Action{}, fmt.Errorf("model: variant v%d not running", v)
	}
	vv, err := s.variantOf(v)
	if err != nil {
		return Action{}, err
	}
	if entry.PC >= len(vv.Script) {
		return Action{}, fmt.Errorf("model: variant v%d ran past its script", v)
	}
	return vv.Script[entry.PC], nil
}

// Progress performs one execution step of running variant v,
// dispatching to the rule matching the variant's next action:
// (spawn), (sync), (end), (create) or (destroy). It returns the name
// of the applied rule.
func (s *State) Progress(v VariantID) (string, error) {
	a, err := s.NextAction(v)
	if err != nil {
		return "", err
	}
	entry := s.R[v]
	switch a.Kind {
	case ActSpawn:
		// (spawn): enqueue the new task, advance the variant.
		if s.Q[a.Task] {
			return "", fmt.Errorf("spawn: task t%d already enqueued", a.Task)
		}
		s.Q[a.Task] = true
		entry.PC++
		s.R[v] = entry
		return "spawn", nil

	case ActSync:
		// (sync): move the variant from R to B, waiting on a.Task.
		delete(s.R, v)
		s.B[v] = BlockEntry{CU: entry.CU, PC: entry.PC + 1, Waiting: a.Task}
		return "sync", nil

	case ActCreate:
		// (create): introduce a new data item; no locks granted, no
		// memory allocated.
		if s.created[a.Item] {
			return "", fmt.Errorf("create: item d%d already live", a.Item)
		}
		s.created[a.Item] = true
		entry.PC++
		s.R[v] = entry
		return "create", nil

	case ActDestroy:
		// (destroy): delete all data elements and locks of the item.
		if !s.created[a.Item] {
			return "", fmt.Errorf("destroy: item d%d not live", a.Item)
		}
		delete(s.created, a.Item)
		for m := range s.D {
			delete(s.D[m], a.Item)
			if len(s.D[m]) == 0 {
				delete(s.D, m)
			}
		}
		for k := range s.Lr {
			if k.D == a.Item {
				delete(s.Lr, k)
			}
		}
		for k := range s.Lw {
			if k.D == a.Item {
				delete(s.Lw, k)
			}
		}
		entry.PC++
		s.R[v] = entry
		return "destroy", nil

	case ActEnd:
		// (end): discard state, release all locks held by v.
		delete(s.R, v)
		for k := range s.Lr {
			if k.V == v {
				delete(s.Lr, k)
			}
		}
		for k := range s.Lw {
			if k.V == v {
				delete(s.Lw, k)
			}
		}
		return "end", nil
	}
	return "", fmt.Errorf("model: unknown action %v", a)
}

// TaskCompleted reports the (continue) rule's completion condition
// for task t: t ∉ Q and no variant of t is running or blocked.
func (s *State) TaskCompleted(t TaskID) bool {
	if s.Q[t] {
		return false
	}
	task, ok := s.Prog.Tasks[t]
	if !ok {
		return true
	}
	for _, v := range task.Variants {
		if _, running := s.R[v]; running {
			return false
		}
		if _, blocked := s.B[v]; blocked {
			return false
		}
	}
	return true
}

// Continue applies the (continue) rule: resume blocked variant v if
// the task it waits on has been completed.
func (s *State) Continue(v VariantID) error {
	entry, ok := s.B[v]
	if !ok {
		return fmt.Errorf("continue: variant v%d not blocked", v)
	}
	if !s.TaskCompleted(entry.Waiting) {
		return fmt.Errorf("continue: task t%d not completed", entry.Waiting)
	}
	delete(s.B, v)
	s.R[v] = RunEntry{CU: entry.CU, PC: entry.PC}
	return nil
}

// ---------------------------------------------------------------
// Data-related transition rules (Fig. 3)
// ---------------------------------------------------------------

// Init applies the (init) rule: allocate elements E of item d in
// address space m, provided none of them is allocated anywhere in the
// system yet.
func (s *State) Init(m MemSpace, d ItemID, elems []Elem) error {
	if len(elems) == 0 {
		return fmt.Errorf("init: empty element set")
	}
	if !s.created[d] {
		return fmt.Errorf("init: item d%d not live", d)
	}
	n := s.Prog.Items[d]
	for _, e := range elems {
		if e < 0 || e >= n {
			return fmt.Errorf("init: element e%d outside elems(d%d)", e, d)
		}
		if len(s.CopiesOf(d, e)) > 0 {
			return fmt.Errorf("init: element (d%d,e%d) already allocated", d, e)
		}
	}
	for _, e := range elems {
		s.addPresence(m, d, e)
	}
	return nil
}

// Migrate applies the (migrate) rule: move elements E of item d from
// space ms to space md, provided no locks are held on the affected
// elements in either space.
//
// Note a subtlety of the formal rule: its effect formula
// (D ∖ ({ms}×{d}×E)) ∪ ({md}×{d}×E) adds E at the destination even
// for elements not present at the source — the bare rules would let
// a migration materialize data. Strict mode additionally requires
// source presence, which is what any implementation does and what the
// data-preservation proof (Appendix A.2.5) implicitly assumes.
func (s *State) Migrate(ms, md MemSpace, d ItemID, elems []Elem) error {
	if len(elems) == 0 {
		return fmt.Errorf("migrate: empty element set")
	}
	if !s.created[d] {
		return fmt.Errorf("migrate: item d%d not live", d)
	}
	for _, e := range elems {
		if s.Strict && !s.Present(ms, d, e) {
			return fmt.Errorf("migrate: (m%d,d%d,e%d) not present at source", ms, d, e)
		}
		for _, m := range []MemSpace{ms, md} {
			if anyLock(s.Lr, m, d, e) || anyLock(s.Lw, m, d, e) {
				return fmt.Errorf("migrate: (m%d,d%d,e%d) is locked", m, d, e)
			}
		}
	}
	for _, e := range elems {
		s.removePresence(ms, d, e)
		s.addPresence(md, d, e)
	}
	return nil
}

// Replicate applies the (replicate) rule: copy elements E of item d
// from ms to md, provided no write lock is held at the source and no
// lock at all at the destination.
func (s *State) Replicate(ms, md MemSpace, d ItemID, elems []Elem) error {
	if len(elems) == 0 {
		return fmt.Errorf("replicate: empty element set")
	}
	if !s.created[d] {
		return fmt.Errorf("replicate: item d%d not live", d)
	}
	for _, e := range elems {
		if !s.Present(ms, d, e) {
			return fmt.Errorf("replicate: (m%d,d%d,e%d) not present at source", ms, d, e)
		}
		if anyLock(s.Lw, ms, d, e) {
			return fmt.Errorf("replicate: (m%d,d%d,e%d) write-locked at source", ms, d, e)
		}
		if anyLock(s.Lr, md, d, e) || anyLock(s.Lw, md, d, e) {
			return fmt.Errorf("replicate: (m%d,d%d,e%d) locked at destination", md, d, e)
		}
	}
	for _, e := range elems {
		s.addPresence(md, d, e)
	}
	return nil
}

// String renders a compact summary of the state tuple.
func (s *State) String() string {
	return fmt.Sprintf("state{|Q|=%d |R|=%d |B|=%d |D|=%d |Lr|=%d |Lw|=%d}",
		len(s.Q), len(s.R), len(s.B), s.presenceCount(), len(s.Lr), len(s.Lw))
}

func (s *State) presenceCount() int {
	n := 0
	for _, items := range s.D {
		for _, elems := range items {
			n += len(elems)
		}
	}
	return n
}
