package model

import "testing"

// tinyProgram is a minimal fork-join with data: entry creates an
// item, spawns two leaf tasks (one writes elements 0–2, one reads
// element 1 after the writer — no, concurrently; regions overlap on
// nothing: writer takes 0..2, reader takes 2..4 read-only), syncs and
// destroys.
func tinyProgram() *Program {
	return &Program{
		Entry: 0,
		Tasks: map[TaskID]*Task{
			0: {ID: 0, Variants: []VariantID{0}},
			1: {ID: 1, Variants: []VariantID{1}},
			2: {ID: 2, Variants: []VariantID{2}},
		},
		Variants: map[VariantID]*Variant{
			0: {ID: 0, Task: 0, Script: []Action{
				{Kind: ActCreate, Item: 0},
				{Kind: ActSpawn, Task: 1},
				{Kind: ActSpawn, Task: 2},
				{Kind: ActSync, Task: 1},
				{Kind: ActSync, Task: 2},
				{Kind: ActDestroy, Item: 0},
				{Kind: ActEnd},
			}},
			1: {ID: 1, Task: 1,
				Script: []Action{{Kind: ActEnd}},
				Writes: []Requirement{{Item: 0, Ranges: []ElemRange{{0, 2}}}},
			},
			2: {ID: 2, Task: 2,
				Script: []Action{{Kind: ActEnd}},
				Reads:  []Requirement{{Item: 0, Ranges: []ElemRange{{2, 4}}}},
			},
		},
		Items: map[ItemID]Elem{0: 4},
	}
}

// TestExhaustiveExplorationHoldsInvariants verifies the Section 2.5
// safety properties over EVERY reachable state of a small program on
// a 2-node cluster — all interleavings of task scheduling and data
// management, not a random sample.
func TestExhaustiveExplorationHoldsInvariants(t *testing.T) {
	p := tinyProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ExploreExhaustive(p, NewCluster(2, 1), 400000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d states, %d transitions, %d terminal", res.States, res.Transitions, res.Terminal)
	if res.States < 100 {
		t.Fatalf("suspiciously small state space: %d", res.States)
	}
	if res.Terminal == 0 {
		t.Fatal("no terminal state reachable")
	}
	if res.Deadlocks != 0 {
		t.Fatalf("%d deadlocked states found", res.Deadlocks)
	}
}

// TestExhaustiveSingleNode explores the degenerate 1-node cluster,
// where no migration or replication is possible.
func TestExhaustiveSingleNode(t *testing.T) {
	res, err := ExploreExhaustive(tinyProgram(), NewCluster(1, 2), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminal == 0 || res.Deadlocks != 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestExhaustiveBoundSurfaces ensures the state bound errors rather
// than exploring forever.
func TestExhaustiveBoundSurfaces(t *testing.T) {
	if _, err := ExploreExhaustive(tinyProgram(), NewCluster(2, 1), 10); err == nil {
		t.Fatal("tiny bound must be exceeded")
	}
}
