package model

import "testing"

func TestJoinNodeExtendsArchitecture(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 2))
	m, err := s.JoinNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("new mem = %d", m)
	}
	if len(s.Arch.Mems) != 2 || len(s.Arch.Units) != 6 {
		t.Fatalf("arch = %d mems %d units", len(s.Arch.Mems), len(s.Arch.Units))
	}
	// The new node is usable: init data there after create.
	driveEntry(t, s)
	if err := s.Init(m, 0, []Elem{3}); err != nil {
		t.Fatalf("init on joined node: %v", err)
	}
	if !s.Present(m, 0, 3) {
		t.Fatal("element missing on joined node")
	}
	if _, err := s.JoinNode(0); err == nil {
		t.Fatal("join with zero cores must fail")
	}
}

func TestCrashPreservesReplicatedData(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(3, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{5})
	if err := s.Replicate(0, 1, 0, []Elem{5}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.CrashNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostElems) != 0 {
		t.Fatalf("replicated element reported lost: %+v", rep.LostElems)
	}
	if copies := s.CopiesOf(0, 5); len(copies) != 1 || copies[0] != 1 {
		t.Fatalf("copies after crash = %v", copies)
	}
}

func TestCrashLosesSoleCopy(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{5})
	rep, err := s.CrashNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostElems) != 1 || rep.LostElems[0].Elem != 5 {
		t.Fatalf("lost = %+v", rep.LostElems)
	}
	if len(s.CopiesOf(0, 5)) != 0 {
		t.Fatal("lost element still present")
	}
	// The element can be re-initialized on a survivor ((init) applies
	// again because the last copy is gone).
	if err := s.Init(1, 0, []Elem{5}); err != nil {
		t.Fatalf("re-init after loss: %v", err)
	}
}

func TestCrashRequeuesRunningTasksAndProgramTerminates(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	s.Strict = true
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	// Start the sequential sum variant on node 1 with its data there.
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(1, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 1, Placement{0: 1}); err != nil {
		t.Fatal(err)
	}
	// Node 1 crashes mid-execution: the task reverts to Q, its data
	// is lost, locks are gone.
	rep, err := s.CrashNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RequeuedTasks) != 1 || rep.RequeuedTasks[0] != 1 {
		t.Fatalf("requeued = %v", rep.RequeuedTasks)
	}
	if len(s.Lr)+len(s.Lw) != 0 {
		t.Fatal("locks of lost variant survived the crash")
	}
	if err := s.CheckAll(); err != nil {
		t.Fatal(err)
	}
	// Recovery: re-init the lost data on node 0 and restart the task
	// there; the program then runs to termination.
	if err := s.Init(0, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	if rule, err := s.Progress(1); err != nil || rule != "end" {
		t.Fatalf("end: %q %v", rule, err)
	}
	// Entry syncs, destroys, ends.
	if rule, err := s.Progress(0); err != nil || rule != "sync" {
		t.Fatalf("sync: %q %v", rule, err)
	}
	if err := s.Continue(0); err != nil {
		t.Fatal(err)
	}
	s.Progress(0) // destroy
	s.Progress(0) // end
	if !s.Terminal() {
		t.Fatalf("program did not terminate after crash recovery: %v", s)
	}
}

func TestCrashGuards(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 1))
	if _, err := s.CrashNode(0); err == nil {
		t.Fatal("crashing the last node must fail")
	}
	if _, err := s.CrashNode(9); err == nil {
		t.Fatal("crashing an unknown node must fail")
	}
}

func TestCrashRemovesOnlyExclusiveUnits(t *testing.T) {
	// A compute unit linked to two address spaces survives the crash
	// of one of them.
	a := NewCluster(2, 1)
	a.Links[0][1] = true // core 0 also reaches memory 1
	s := NewState(sumProgram(), a)
	if _, err := s.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	foundCore0 := false
	for _, c := range s.Arch.Units {
		if c == 0 {
			foundCore0 = true
		}
	}
	if !foundCore0 {
		t.Fatal("multi-homed compute unit removed")
	}
	if s.Arch.Linked(0, 1) {
		t.Fatal("link to crashed memory survived")
	}
	if !s.Arch.Linked(0, 0) {
		t.Fatal("surviving link removed")
	}
}
