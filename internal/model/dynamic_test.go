package model

import (
	"fmt"
	"testing"
)

func TestJoinNodeExtendsArchitecture(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 2))
	m, err := s.JoinNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("new mem = %d", m)
	}
	if len(s.Arch.Mems) != 2 || len(s.Arch.Units) != 6 {
		t.Fatalf("arch = %d mems %d units", len(s.Arch.Mems), len(s.Arch.Units))
	}
	// The new node is usable: init data there after create.
	driveEntry(t, s)
	if err := s.Init(m, 0, []Elem{3}); err != nil {
		t.Fatalf("init on joined node: %v", err)
	}
	if !s.Present(m, 0, 3) {
		t.Fatal("element missing on joined node")
	}
	if _, err := s.JoinNode(0); err == nil {
		t.Fatal("join with zero cores must fail")
	}
}

func TestCrashPreservesReplicatedData(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(3, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{5})
	if err := s.Replicate(0, 1, 0, []Elem{5}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.CrashNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostElems) != 0 {
		t.Fatalf("replicated element reported lost: %+v", rep.LostElems)
	}
	if copies := s.CopiesOf(0, 5); len(copies) != 1 || copies[0] != 1 {
		t.Fatalf("copies after crash = %v", copies)
	}
}

func TestCrashLosesSoleCopy(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	s.Init(0, 0, []Elem{5})
	rep, err := s.CrashNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostElems) != 1 || rep.LostElems[0].Elem != 5 {
		t.Fatalf("lost = %+v", rep.LostElems)
	}
	if len(s.CopiesOf(0, 5)) != 0 {
		t.Fatal("lost element still present")
	}
	// The element can be re-initialized on a survivor ((init) applies
	// again because the last copy is gone).
	if err := s.Init(1, 0, []Elem{5}); err != nil {
		t.Fatalf("re-init after loss: %v", err)
	}
}

func TestCrashRequeuesRunningTasksAndProgramTerminates(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	s.Strict = true
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	// Start the sequential sum variant on node 1 with its data there.
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(1, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 1, Placement{0: 1}); err != nil {
		t.Fatal(err)
	}
	// Node 1 crashes mid-execution: the task reverts to Q, its data
	// is lost, locks are gone.
	rep, err := s.CrashNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RequeuedTasks) != 1 || rep.RequeuedTasks[0] != 1 {
		t.Fatalf("requeued = %v", rep.RequeuedTasks)
	}
	if len(s.Lr)+len(s.Lw) != 0 {
		t.Fatal("locks of lost variant survived the crash")
	}
	if err := s.CheckAll(); err != nil {
		t.Fatal(err)
	}
	// Recovery: re-init the lost data on node 0 and restart the task
	// there; the program then runs to termination.
	if err := s.Init(0, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 0, Placement{0: 0}); err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	if rule, err := s.Progress(1); err != nil || rule != "end" {
		t.Fatalf("end: %q %v", rule, err)
	}
	// Entry syncs, destroys, ends.
	if rule, err := s.Progress(0); err != nil || rule != "sync" {
		t.Fatalf("sync: %q %v", rule, err)
	}
	if err := s.Continue(0); err != nil {
		t.Fatal(err)
	}
	s.Progress(0) // destroy
	s.Progress(0) // end
	if !s.Terminal() {
		t.Fatalf("program did not terminate after crash recovery: %v", s)
	}
}

func TestCrashGuards(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 1))
	if _, err := s.CrashNode(0); err == nil {
		t.Fatal("crashing the last node must fail")
	}
	if _, err := s.CrashNode(9); err == nil {
		t.Fatal("crashing an unknown node must fail")
	}
}

func TestDrainMigratesSoleCopyAndDropsReplicas(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(3, 1))
	driveEntry(t, s)
	s.Init(1, 0, []Elem{4}) // sole copy on the node to drain
	s.Init(0, 0, []Elem{7})
	if err := s.Replicate(0, 1, 0, []Elem{7}); err != nil { // replica on it
		t.Fatal(err)
	}
	before := s.CurrentFootprint()
	rep, err := s.DrainNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedElems != 1 || rep.DroppedReplicas != 1 {
		t.Fatalf("report = %+v, want 1 migrated, 1 dropped", rep)
	}
	// The sole copy moved to the lowest survivor; the replica's master
	// copy survives untouched; nothing was lost.
	if copies := s.CopiesOf(0, 4); len(copies) != 1 || copies[0] != 0 {
		t.Fatalf("migrated copies = %v, want [0]", copies)
	}
	if copies := s.CopiesOf(0, 7); len(copies) != 1 || copies[0] != 0 {
		t.Fatalf("replicated copies = %v, want [0]", copies)
	}
	if err := CheckDataPreservation(before, s.CurrentFootprint(), "drain", -1); err != nil {
		t.Fatal(err)
	}
	if len(s.Arch.Mems) != 2 {
		t.Fatalf("mems after drain = %v", s.Arch.Mems)
	}
	if err := s.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRefusesBusyNode(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(2, 1))
	s.Strict = true
	driveEntry(t, s)
	s.Progress(0) // spawn sum
	elems := make([]Elem, 20)
	for i := range elems {
		elems[i] = Elem(i)
	}
	if err := s.Init(1, 0, elems); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(1, 1, 1, Placement{0: 1}); err != nil {
		t.Fatal(err)
	}
	// A variant runs on node 1 and holds locks there: draining it must
	// fail without mutating anything.
	memsBefore := len(s.Arch.Mems)
	if _, err := s.DrainNode(1); err == nil {
		t.Fatal("drain of a busy node must fail")
	}
	if len(s.Arch.Mems) != memsBefore {
		t.Fatal("failed drain mutated the architecture")
	}
	// Run the variant to completion; the drain then goes through.
	if rule, err := s.Progress(1); err != nil || rule != "end" {
		t.Fatalf("end: %q %v", rule, err)
	}
	if _, err := s.DrainNode(1); err != nil {
		t.Fatalf("drain of quiescent node: %v", err)
	}
	// All of the task's data survived the drain on node 0.
	for _, e := range elems {
		if copies := s.CopiesOf(0, e); len(copies) != 1 || copies[0] != 0 {
			t.Fatalf("element %d copies after drain = %v", e, copies)
		}
	}
}

func TestDrainGuards(t *testing.T) {
	s := NewState(sumProgram(), NewCluster(1, 1))
	if _, err := s.DrainNode(0); err == nil {
		t.Fatal("draining the last node must fail")
	}
	if _, err := s.DrainNode(9); err == nil {
		t.Fatal("draining an unknown node must fail")
	}
}

func TestDrainJoinedNodeRoundTrip(t *testing.T) {
	// Grow, put data on the new node, shrink again: the footprint is
	// preserved across the full cycle and the architecture returns to
	// its original shape.
	s := NewState(sumProgram(), NewCluster(2, 1))
	driveEntry(t, s)
	m, err := s.JoinNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Init(m, 0, []Elem{11}); err != nil {
		t.Fatal(err)
	}
	before := s.CurrentFootprint()
	rep, err := s.DrainNode(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedElems != 1 {
		t.Fatalf("report = %+v, want the joined node's element migrated", rep)
	}
	if err := CheckDataPreservation(before, s.CurrentFootprint(), "drain", -1); err != nil {
		t.Fatal(err)
	}
	if len(s.Arch.Mems) != 2 || len(s.Arch.Units) != 2 {
		t.Fatalf("arch after round trip = %d mems %d units", len(s.Arch.Mems), len(s.Arch.Units))
	}
}

// checkOwnership verifies the membership-side data invariants: no
// presence is recorded under an address space outside the current
// architecture (nothing is owned by a departed node) and no element is
// write-locked while replicated (no double ownership).
func checkOwnership(s *State) error {
	mems := map[MemSpace]bool{}
	for _, m := range s.Arch.Mems {
		mems[m] = true
	}
	for m, items := range s.D {
		if mems[m] {
			continue
		}
		for d, elems := range items {
			if len(elems) > 0 {
				return fmt.Errorf("ownership: d%d has presence on departed space m%d", d, m)
			}
		}
	}
	return s.CheckExclusiveWrites()
}

// TestElasticInterleavingsPreserveData is the grow/shrink property
// test: random join, graceful drain and crash transitions are
// interleaved with the explorer's scheduling steps. Across every
// interleaving the program still terminates, drains lose nothing,
// crashes lose exactly their reported sole copies, and no element is
// ever owned by a space outside the architecture.
func TestElasticInterleavingsPreserveData(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		x := NewExplorer(sumProgram(), NewCluster(2, 1), seed)
		s := x.S
		events := 0
		for step := 0; ; step++ {
			if s.Terminal() {
				break
			}
			if step >= x.MaxSteps {
				t.Fatalf("seed %d: step budget exhausted in %v", seed, s)
			}
			if x.Rand.Float64() < 0.15 {
				before := s.CurrentFootprint()
				switch x.Rand.Intn(3) {
				case 0: // grow
					if len(s.Arch.Mems) < 4 {
						if _, err := s.JoinNode(1 + x.Rand.Intn(2)); err != nil {
							t.Fatalf("seed %d step %d: join: %v", seed, step, err)
						}
						events++
					}
				case 1: // graceful shrink; busy-node refusals are expected
					if len(s.Arch.Mems) >= 2 {
						m := s.Arch.Mems[x.Rand.Intn(len(s.Arch.Mems))]
						if _, err := s.DrainNode(m); err == nil {
							if err := CheckDataPreservation(before, s.CurrentFootprint(), "drain", -1); err != nil {
								t.Fatalf("seed %d step %d: drain m%d: %v", seed, step, m, err)
							}
							events++
						}
					}
				case 2: // crash an idle node: exactly its sole copies are lost
					if len(s.Arch.Mems) >= 2 {
						m := s.Arch.Mems[x.Rand.Intn(len(s.Arch.Mems))]
						if idleNode(s, m) {
							rep, err := s.CrashNode(m)
							if err != nil {
								t.Fatalf("seed %d step %d: crash m%d: %v", seed, step, m, err)
							}
							lost := map[ItemID]map[Elem]bool{}
							for _, l := range rep.LostElems {
								if lost[l.Item] == nil {
									lost[l.Item] = map[Elem]bool{}
								}
								lost[l.Item][l.Elem] = true
							}
							after := s.CurrentFootprint()
							for d, elems := range before {
								for e := range elems {
									if !after[d][e] && !lost[d][e] {
										t.Fatalf("seed %d step %d: crash m%d silently lost (d%d,e%d)", seed, step, m, d, e)
									}
								}
							}
							events++
						}
					}
				}
				if err := s.CheckAll(); err != nil {
					t.Fatalf("seed %d step %d: after membership event: %v", seed, step, err)
				}
				if err := checkOwnership(s); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				continue
			}
			before := s.CurrentFootprint()
			rule, rec, err := x.step()
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if rule == "" {
				t.Fatalf("seed %d step %d: deadlock in %v", seed, step, s)
			}
			if err := s.CheckAll(); err != nil {
				t.Fatalf("seed %d step %d: after %s: %v", seed, step, rule, err)
			}
			destroyed := ItemID(-1)
			if rule == "destroy" {
				destroyed = rec.Item
			}
			if err := CheckDataPreservation(before, s.CurrentFootprint(), rule, destroyed); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if err := checkOwnership(s); err != nil {
				t.Fatalf("seed %d step %d: after %s: %v", seed, step, rule, err)
			}
		}
		if events == 0 {
			t.Logf("seed %d: no membership event fired before termination", seed)
		}
	}
}

// idleNode reports whether no variant runs or blocks on a compute unit
// exclusively linked to m (so a crash cannot strand a live variant's
// requirements — the model analogue of crashing a node that holds no
// work, which the interleaving test uses to keep traces terminating).
func idleNode(s *State, m MemSpace) bool {
	gone := map[ComputeUnit]bool{}
	for _, c := range s.Arch.Units {
		links := s.Arch.Links[c]
		if links[m] && len(links) == 1 {
			gone[c] = true
		}
	}
	for _, e := range s.R {
		if gone[e.CU] {
			return false
		}
	}
	for _, e := range s.B {
		if gone[e.CU] {
			return false
		}
	}
	return true
}

func TestCrashRemovesOnlyExclusiveUnits(t *testing.T) {
	// A compute unit linked to two address spaces survives the crash
	// of one of them.
	a := NewCluster(2, 1)
	a.Links[0][1] = true // core 0 also reaches memory 1
	s := NewState(sumProgram(), a)
	if _, err := s.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	foundCore0 := false
	for _, c := range s.Arch.Units {
		if c == 0 {
			foundCore0 = true
		}
	}
	if !foundCore0 {
		t.Fatal("multi-homed compute unit removed")
	}
	if s.Arch.Linked(0, 1) {
		t.Fatal("link to crashed memory survived")
	}
	if !s.Arch.Linked(0, 0) {
		t.Fatal("surviving link removed")
	}
}
