// Top-level benchmark harness: one benchmark per table and figure of
// the paper's evaluation (Section 4), plus microbenchmarks of the
// load-bearing runtime mechanisms. Run with
//
//	go test -bench=. -benchmem .
//
// Figure benchmarks print the regenerated series once per run; the
// reported ns/op measures the cost of regenerating the artifact.
package allscale_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"allscale/internal/apps/ipic3d"
	"allscale/internal/apps/stencil"
	"allscale/internal/apps/tpc"
	"allscale/internal/bench"
	"allscale/internal/core"
	"allscale/internal/dataitem"
	"allscale/internal/dim"
	"allscale/internal/region"
	"allscale/internal/resilience"
	"allscale/internal/runtime"
	"allscale/internal/sched"
)

// ---------------------------------------------------------------
// Table 1: the three target application codes (real runtime, small
// instances of each workload).
// ---------------------------------------------------------------

func BenchmarkTable1Apps(b *testing.B) {
	b.Run("stencil", func(b *testing.B) {
		p := stencil.Params{N: 64, Steps: 4, C: 0.1, MinGrain: 512}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stencil.RunAllScale(2, p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64((p.N-2)*(p.N-2)*stencil.FlopsPerCell*p.Steps), "flops/op")
	})
	b.Run("iPiC3D", func(b *testing.B) {
		p := ipic3d.Params{N: 5, Steps: 2, PartsPerCell: 2, Dt: 0.5, Seed: 1, MinGrain: 32}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ipic3d.RunAllScale(2, p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(p.N*p.N*p.N*p.PartsPerCell*p.Steps), "particle-updates/op")
	})
	b.Run("TPC", func(b *testing.B) {
		p := tpc.Params{NumPoints: 512, Height: 6, BlockHeight: 2, Radius: 60, NumQueries: 8, Seed: 3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tpc.RunAllScale(2, p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(p.NumQueries), "queries/op")
	})
}

// ---------------------------------------------------------------
// Fig. 7: throughput scaling of the three applications on the
// simulated 1–64 node cluster (AllScale vs MPI vs linear).
// ---------------------------------------------------------------

func BenchmarkFig7Stencil(b *testing.B) {
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig7Stencil()
	}
	printFig(b, fig)
}

func BenchmarkFig7IPiC3D(b *testing.B) {
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig7IPiC3D()
	}
	printFig(b, fig)
}

func BenchmarkFig7TPC(b *testing.B) {
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig7TPC()
	}
	printFig(b, fig)
}

func printFig(b *testing.B, fig bench.Figure) {
	b.Helper()
	b.StopTimer()
	fmt.Println(fig.Render())
	if v, ok := fig.Lookup("AllScale", 64); ok {
		b.ReportMetric(v, "allscale@64")
	}
	if v, ok := fig.Lookup("MPI", 64); ok {
		b.ReportMetric(v, "mpi@64")
	}
}

// ---------------------------------------------------------------
// Ablation benches (E5–E7 of DESIGN.md).
// ---------------------------------------------------------------

func BenchmarkTreeRegionOps(b *testing.B) {
	mk := func(h int) []region.TreeRegion {
		out := make([]region.TreeRegion, 8)
		for i := range out {
			r := region.EmptyTreeRegion(h)
			for j := 0; j < 4; j++ {
				r = r.Union(region.SubtreeRegion(h, region.NodeID(3+i*5+j*7)))
			}
			out[i] = r
		}
		return out
	}
	b.Run("flexible-h16", func(b *testing.B) {
		rs := mk(16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, c := rs[i%8], rs[(i+3)%8]
			_ = a.Union(c).Difference(a.Intersect(c))
		}
	})
	b.Run("blocked-h16", func(b *testing.B) {
		rs := make([]region.BlockedTreeRegion, 8)
		for i := range rs {
			r := region.NewBlockedTreeRegion(16, 8)
			for j := 0; j < 16; j++ {
				r = r.WithBlock((i*13 + j*29) % r.Blocks())
			}
			rs[i] = r
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, c := rs[i%8], rs[(i+3)%8]
			_ = a.Union(c).Difference(a.Intersect(c))
		}
	})
}

func BenchmarkIndexResolve(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			sys := runtime.NewSystem(p)
			managers := make([]*dim.Manager, p)
			typ := dataitem.NewGridType[int]("bench.field", region.Point{16 * p, 16})
			for i := 0; i < p; i++ {
				reg := dataitem.NewRegistry()
				reg.MustRegister(typ)
				managers[i] = dim.New(sys.Locality(i), reg)
			}
			sys.Start()
			defer sys.Close()
			id, err := managers[0].CreateItem(typ)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < p; i++ {
				band := dataitem.GridRegionFromTo(region.Point{16 * i, 0}, region.Point{16 * (i + 1), 16})
				if err := managers[i].Acquire(uint64(i+1), []dim.Requirement{{Item: id, Region: band, Mode: dim.Write}}); err != nil {
					b.Fatal(err)
				}
				managers[i].Release(uint64(i + 1))
			}
			span := dataitem.GridRegionFromTo(region.Point{3, 0}, region.Point{16*p - 3, 16})
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := managers[i%p].Lookup(id, span); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchedulerPolicies(b *testing.B) {
	params := stencil.Params{N: 32, Steps: 2, C: 0.1, MinGrain: 128}
	for i := 0; i < b.N; i++ {
		if _, err := bench.SchedulerAblation(2, params); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------
// Microbenchmarks of the load-bearing mechanisms.
// ---------------------------------------------------------------

func BenchmarkBoxSetOps(b *testing.B) {
	mk := func(off int) region.BoxSet {
		return region.NewBoxSet(
			region.NewBox(region.Point{off, 0}, region.Point{off + 40, 40}),
			region.NewBox(region.Point{off + 50, 10}, region.Point{off + 90, 60}),
		)
	}
	a, c := mk(0), mk(25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c).Difference(a.Intersect(c))
	}
}

func BenchmarkDIMAcquireRelease(b *testing.B) {
	sys := runtime.NewSystem(2)
	managers := make([]*dim.Manager, 2)
	typ := dataitem.NewGridType[float64]("bench.acq", region.Point{64, 64})
	for i := 0; i < 2; i++ {
		reg := dataitem.NewRegistry()
		reg.MustRegister(typ)
		managers[i] = dim.New(sys.Locality(i), reg)
	}
	sys.Start()
	defer sys.Close()
	id, err := managers[0].CreateItem(typ)
	if err != nil {
		b.Fatal(err)
	}
	r := dataitem.GridRegionFromTo(region.Point{0, 0}, region.Point{64, 64})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok := uint64(i + 1)
		if err := managers[0].Acquire(tok, []dim.Requirement{{Item: id, Region: r, Mode: dim.Write}}); err != nil {
			b.Fatal(err)
		}
		managers[0].Release(tok)
	}
}

func BenchmarkTaskSpawnTree(b *testing.B) {
	sys := core.NewSystem(core.Config{Localities: 2})
	grid := core.DefineGrid[int](sys, "bench.spawn", region.Point{1 << 14})
	core.RegisterPFor(sys, core.PForSpec{
		Name:     "noop",
		MinGrain: 1 << 10,
		Body:     func(ctx *sched.Ctx, p region.Point, _ []byte) {},
	})
	_ = grid
	sys.Start()
	defer sys.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sys.PFor("noop", region.Point{0}, region.Point{1 << 14}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table1()
	}
}

// ---------------------------------------------------------------
// E10: tracing overhead. The acceptance bar for the observability
// layer is <5% slowdown on the stencil app with tracing enabled
// (per-rank span rings + wire-envelope propagation) versus disabled
// (nil tracer, one pointer test per instrumentation site).
// ---------------------------------------------------------------

func BenchmarkStencil(b *testing.B) {
	p := stencil.Params{N: 64, Steps: 4, C: 0.1, MinGrain: 512}
	run := func(b *testing.B, traceCap int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(core.Config{Localities: 2, TraceCapacity: traceCap})
			app := stencil.NewAllScale(sys, p)
			sys.Start()
			err := app.Run()
			if err == nil {
				_, err = app.Result()
			}
			sys.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("trace-off", func(b *testing.B) { run(b, 0) })
	b.Run("trace-on", func(b *testing.B) { run(b, 1<<16) })

	// small-grain shrinks the block size until the run is dominated by
	// task management rather than arithmetic — the scheduler fast-path
	// regression gauge of EXPERIMENTS.md E12.
	b.Run("small-grain-64", func(b *testing.B) {
		small := stencil.Params{N: 64, Steps: 4, C: 0.1, MinGrain: 64}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(core.Config{
				Localities: 2,
				Policy:     &sched.DefaultPolicy{ExtraDepth: 5},
			})
			app := stencil.NewAllScale(sys, small)
			sys.Start()
			err := app.Run()
			if err == nil {
				_, err = app.Result()
			}
			sys.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------
// Checkpoint codec: the framed binary checkpoint format (uvarint
// records + CRC32) versus the legacy gob stream it replaced, on a
// realistic multi-fragment capture.
// ---------------------------------------------------------------

func BenchmarkCheckpointCodec(b *testing.B) {
	sys := core.NewSystem(core.Config{Localities: 4})
	p := stencil.Params{N: 96, Steps: 2, C: 0.1, MinGrain: 512}
	app := stencil.NewAllScale(sys, p)
	sys.Start()
	defer sys.Close()
	if err := app.CreateItems(); err != nil {
		b.Fatal(err)
	}
	if err := app.Init(); err != nil {
		b.Fatal(err)
	}
	cp, err := resilience.Capture(sys, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("checkpoint: %d records, %d payload bytes", len(cp.Records), cp.Size())

	b.Run("wire-encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if _, err := cp.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	b.Run("gob-encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})

	var wireBuf, gobBuf bytes.Buffer
	if _, err := cp.WriteTo(&wireBuf); err != nil {
		b.Fatal(err)
	}
	if err := gob.NewEncoder(&gobBuf).Encode(cp); err != nil {
		b.Fatal(err)
	}
	b.Run("wire-decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(wireBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := resilience.ReadCheckpoint(bytes.NewReader(wireBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob-decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(gobBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := resilience.ReadCheckpoint(bytes.NewReader(gobBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
